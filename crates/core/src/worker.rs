//! Application worker threads.
//!
//! Worker threads pull requests off the shared [`RequestQueue`](crate::queue::RequestQueue),
//! invoke the application, and route the completion either straight to the statistics
//! collector (integrated configuration) or back to the originating connection (TCP
//! configurations).  The number of worker threads is the "threads" axis of the paper's
//! multithreaded experiments (Fig. 4, Fig. 7).

use crate::app::ServerApp;
use crate::queue::{Completion, QueuedRequest, ServerCompletion};
use crate::time::RunClock;
use crossbeam::channel::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A pool of application worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<u64>>,
}

impl WorkerPool {
    /// Spawns `threads` workers that serve requests from `queue_rx` using `app`.
    ///
    /// Workers exit when the queue channel is closed (all producers dropped).
    #[must_use]
    pub fn spawn(
        app: Arc<dyn ServerApp>,
        queue_rx: Receiver<QueuedRequest>,
        clock: RunClock,
        threads: usize,
    ) -> Self {
        let handles = (0..threads.max(1))
            .map(|i| {
                let app = Arc::clone(&app);
                let rx = queue_rx.clone();
                std::thread::Builder::new()
                    .name(format!("tb-worker-{i}"))
                    .spawn(move || worker_loop(&*app, &rx, clock))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Returns `true` if the pool has no workers (never the case for spawned pools).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to exit and returns the total number of requests served.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn join(self) -> u64 {
        self.handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .sum()
    }
}

/// The body of one worker thread. Returns the number of requests it served.
fn worker_loop(app: &dyn ServerApp, rx: &Receiver<QueuedRequest>, clock: RunClock) -> u64 {
    let mut served = 0u64;
    while let Ok(item) = rx.recv() {
        let started_ns = clock.now_ns();
        let response = app.handle(&item.request.payload);
        let completed_ns = clock.now_ns();
        served += 1;
        let completion = ServerCompletion {
            id: item.request.id,
            issued_ns: item.request.issued_ns,
            enqueued_ns: item.enqueued_ns,
            started_ns,
            completed_ns,
            work: response.work,
            response_payload: response.payload,
        };
        match item.completion {
            Completion::Collector(tx) => {
                // Integrated configuration: the response is "delivered" at completion.
                let record = completion.into_record(completed_ns);
                // The collector may already be gone during teardown; that's fine.
                let _ = tx.send(record);
            }
            Completion::Responder(tx) => {
                let _ = tx.send(completion);
            }
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::queue::RequestQueue;
    use crate::request::{Request, RequestId};
    use crossbeam::channel::unbounded;

    #[test]
    fn workers_process_requests_and_report_to_collector() {
        let clock = RunClock::new();
        let queue = RequestQueue::new();
        let app: Arc<dyn ServerApp> = Arc::new(EchoApp::default());
        let pool = WorkerPool::spawn(app, queue.receiver(), clock, 2);
        assert_eq!(pool.len(), 2);

        let (record_tx, record_rx) = unbounded();
        for i in 0..20u64 {
            let ok = queue.push(
                Request {
                    id: RequestId(i),
                    payload: vec![i as u8],
                    issued_ns: clock.now_ns(),
                },
                clock.now_ns(),
                Completion::Collector(record_tx.clone()),
            );
            assert!(ok);
        }
        queue.close();
        drop(record_tx);

        let served = pool.join();
        assert_eq!(served, 20);
        let records: Vec<_> = record_rx.iter().collect();
        assert_eq!(records.len(), 20);
        for r in &records {
            assert!(r.completed_ns >= r.started_ns);
            assert!(r.started_ns >= r.enqueued_ns);
        }
    }

    #[test]
    fn workers_route_to_responder() {
        let clock = RunClock::new();
        let queue = RequestQueue::new();
        let app: Arc<dyn ServerApp> = Arc::new(EchoApp::default());
        let pool = WorkerPool::spawn(app, queue.receiver(), clock, 1);

        let (resp_tx, resp_rx) = unbounded();
        queue.push(
            Request {
                id: RequestId(7),
                payload: b"ping".to_vec(),
                issued_ns: 1,
            },
            2,
            Completion::Responder(resp_tx),
        );
        queue.close();
        let _ = pool.join();
        let completion = resp_rx.recv().unwrap();
        assert_eq!(completion.id, RequestId(7));
        assert_eq!(&completion.response_payload[..4], b"ping");
    }
}
