//! Application worker threads.
//!
//! Worker threads pull requests off the shared [`RequestQueue`](crate::queue::RequestQueue),
//! invoke the application, and either record the completion straight into their own
//! statistics shard (integrated configuration — no cross-thread send on the critical
//! path) or route it back to the originating connection (TCP configurations).  The
//! number of worker threads is the "threads" axis of the paper's multithreaded
//! experiments (Fig. 4, Fig. 7).

use crate::app::ServerApp;
use crate::collector::StatsCollector;
use crate::error::HarnessError;
use crate::pool::BufferPool;
use crate::queue::{Completion, QueueReceiver, ServerCompletion};
use crate::time::RunClock;
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a joined worker pool hands back: the served-request count plus the merged
/// per-worker statistics shards (empty for TCP runs, where clients record instead).
#[derive(Debug)]
pub struct WorkerOutput {
    /// Total requests served across all workers.
    pub served: u64,
    /// The merged per-worker collector shards.
    pub stats: StatsCollector,
}

/// A pool of application worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<(u64, StatsCollector)>>,
    shard_proto: StatsCollector,
}

impl WorkerPool {
    /// Spawns `threads` workers that serve requests from `queue_rx` using `app`.
    ///
    /// Each worker owns a clone of `shard` (its local statistics shard, used for
    /// [`Completion::Inline`] requests) and, when `pool` is given, recycles request
    /// payload buffers into it after handling.  Workers exit when the queue is closed
    /// (all producers dropped).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the operating system refuses to spawn a
    /// worker thread.
    pub fn spawn(
        app: Arc<dyn ServerApp>,
        queue_rx: QueueReceiver,
        clock: RunClock,
        threads: usize,
        shard: StatsCollector,
        pool: Option<Arc<BufferPool>>,
    ) -> Result<Self, HarnessError> {
        let shard_proto = shard.clone();
        let mut handles = Vec::with_capacity(threads.max(1));
        for i in 0..threads.max(1) {
            let app = Arc::clone(&app);
            let rx = queue_rx.clone();
            let mut local = shard.clone();
            let pool = pool.clone();
            let handle = std::thread::Builder::new()
                .name(format!("tb-worker-{i}"))
                .spawn(move || {
                    let served = worker_loop(&*app, &rx, clock, &mut local, pool.as_deref());
                    (served, local)
                })?;
            handles.push(handle);
        }
        Ok(WorkerPool {
            handles,
            shard_proto,
        })
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Returns `true` if the pool has no workers (never the case for spawned pools).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to exit, returning the total served count and the merged
    /// per-worker statistics shards.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Internal`] if a worker thread panicked; the
    /// remaining workers are still joined first so no thread is leaked.
    pub fn join(self) -> Result<WorkerOutput, HarnessError> {
        let mut stats = self.shard_proto;
        let mut served = 0u64;
        let mut panicked = 0usize;
        for handle in self.handles {
            match handle.join() {
                Ok((count, shard)) => {
                    served += count;
                    stats.merge(&shard);
                }
                Err(_) => panicked += 1,
            }
        }
        if panicked > 0 {
            return Err(HarnessError::Internal(format!(
                "{panicked} worker thread(s) panicked"
            )));
        }
        Ok(WorkerOutput { served, stats })
    }
}

/// The body of one worker thread. Returns the number of requests it served.
fn worker_loop(
    app: &dyn ServerApp,
    rx: &QueueReceiver,
    clock: RunClock,
    shard: &mut StatsCollector,
    pool: Option<&BufferPool>,
) -> u64 {
    let mut served = 0u64;
    // `recv_at` lets deadline-aware admission policies shed requests whose queueing
    // delay already blew the SLO at the moment a worker would otherwise start them.
    while let Ok(item) = rx.recv_at(&|| clock.now_ns()) {
        let started_ns = clock.now_ns();
        let response = app.handle(&item.request.payload);
        let completed_ns = clock.now_ns();
        served += 1;
        if let Some(pool) = pool {
            pool.recycle(item.request.payload);
        }
        match item.completion {
            Completion::Inline => {
                // Integrated configuration: the response is "delivered" at completion
                // and recorded into this worker's own shard — zero cross-thread work.
                shard.record(&crate::request::RequestRecord {
                    id: item.request.id,
                    issued_ns: item.request.issued_ns,
                    enqueued_ns: item.enqueued_ns,
                    started_ns,
                    completed_ns,
                    client_received_ns: completed_ns,
                });
            }
            Completion::Responder(tx) => {
                let completion = ServerCompletion {
                    id: item.request.id,
                    issued_ns: item.request.issued_ns,
                    enqueued_ns: item.enqueued_ns,
                    started_ns,
                    completed_ns,
                    work: response.work,
                    response_payload: response.payload,
                };
                let _ = tx.send(completion);
            }
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::queue::{PushOutcome, RequestQueue};
    use crate::request::{Request, RequestId};
    use crossbeam::channel::unbounded;

    #[test]
    fn workers_process_requests_and_record_inline() {
        let clock = RunClock::new();
        let queue = RequestQueue::new();
        let app: Arc<dyn ServerApp> = Arc::new(EchoApp::default());
        let pool = WorkerPool::spawn(
            app,
            queue.receiver(),
            clock,
            2,
            StatsCollector::new(0),
            None,
        )
        .expect("spawn workers");
        assert_eq!(pool.len(), 2);

        for i in 0..20u64 {
            let outcome = queue.push(
                Request {
                    id: RequestId(i),
                    payload: vec![i as u8],
                    issued_ns: clock.now_ns(),
                },
                clock.now_ns(),
                Completion::Inline,
            );
            assert_eq!(outcome, PushOutcome::Accepted);
        }
        queue.close();

        let out = pool.join().expect("join workers");
        assert_eq!(out.served, 20);
        assert_eq!(out.stats.measured(), 20);
        let sojourn = out.stats.sojourn_stats();
        assert!(sojourn.max_ns >= sojourn.min_ns);
        assert!(out.stats.queue_stats().count == 20);
    }

    #[test]
    fn workers_route_to_responder_and_recycle_buffers() {
        let clock = RunClock::new();
        let queue = RequestQueue::new();
        let app: Arc<dyn ServerApp> = Arc::new(EchoApp::default());
        let buffers = Arc::new(BufferPool::default());
        let pool = WorkerPool::spawn(
            app,
            queue.receiver(),
            clock,
            1,
            StatsCollector::new(0),
            Some(Arc::clone(&buffers)),
        )
        .expect("spawn workers");

        let (resp_tx, resp_rx) = unbounded();
        queue.push(
            Request {
                id: RequestId(7),
                payload: b"ping".to_vec(),
                issued_ns: 1,
            },
            2,
            Completion::Responder(resp_tx),
        );
        queue.close();
        let out = pool.join().expect("join workers");
        assert_eq!(out.served, 1);
        assert_eq!(
            out.stats.measured(),
            0,
            "responder requests record elsewhere"
        );
        let completion = resp_rx.recv().unwrap();
        assert_eq!(completion.id, RequestId(7));
        assert_eq!(&completion.response_payload[..4], b"ping");
        assert_eq!(buffers.stats().recycled, 1, "request payload was recycled");
    }
}
