//! The integrated harness configuration.
//!
//! Client, harness and application live in a single process and communicate through
//! shared memory (paper Fig. 1, upper right).  This is the configuration that the paper
//! recommends for simulation studies; on a real system it measures pure request
//! processing plus queuing, with no network-stack overhead.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::{ClusterCollector, ClusterCollectorHandle, CollectorHandle, StatsCollector};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::hedge::{HedgeEngine, HedgeMsg};
use crate::interference::InterferedApp;
use crate::queue::{Completion, RequestQueue};
use crate::report::{ClusterReport, HedgeStats, LabeledLatency, LatencyStats, RunReport};
use crate::time::RunClock;
use crate::traffic::{LoadMode, TrafficShaper};
use crate::worker::WorkerPool;
use std::sync::Arc;
use tailbench_workloads::rng::seeded_rng;

/// Wraps `app` with the configuration's interference plan for `instance` (identity when
/// the plan is empty), sharing the run's clock so fault windows line up with the
/// request timeline.
pub(crate) fn interfered(
    app: &Arc<dyn ServerApp>,
    config: &BenchmarkConfig,
    instance: usize,
    clock: RunClock,
) -> Arc<dyn ServerApp> {
    if config.interference.is_empty() {
        Arc::clone(app)
    } else {
        Arc::new(InterferedApp::new(
            Arc::clone(app),
            &config.interference,
            instance,
            clock,
        ))
    }
}

/// Runs one measurement in the integrated configuration and returns its report.
///
/// The factory provides request payloads; `config.load` controls their timing.  Warmup
/// requests are issued at the same rate as measured ones and excluded from statistics.
pub fn run_integrated(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
) -> RunReport {
    app.prepare();
    let clock = RunClock::new();
    let serve_app = interfered(app, config, 0, clock);
    let queue = RequestQueue::new();
    let collector =
        CollectorHandle::spawn_with_tags(config.warmup_requests as u64, config.tags.clone());
    let pool = WorkerPool::spawn(serve_app, queue.receiver(), clock, config.worker_threads);

    let collector_stats = match &config.load {
        LoadMode::Closed { think_ns } => run_closed_loop(
            app, factory, config, *think_ns, clock, queue, pool, collector,
        ),
        open => {
            let mut rng = seeded_rng(config.seed, 1);
            let times = open
                .schedule(&mut rng, config.total_requests())
                .expect("open-loop by match");
            let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
            let record_tx = collector.sender();
            let max_ns = config.max_duration.as_nanos() as u64;
            for mut request in shaper.into_requests() {
                let now = clock.sleep_until_ns(request.issued_ns);
                if now > max_ns {
                    break;
                }
                // The request is stamped with its *actual* issue time so pacing jitter is
                // charged to the harness, not hidden.
                request.issued_ns = now;
                if !queue.push(request, now, Completion::Collector(record_tx.clone())) {
                    break;
                }
            }
            drop(record_tx);
            queue.close();
            let _ = pool.join();
            collector.join()
        }
    };

    build_report(app.name(), "integrated", config, &collector_stats)
}

/// Closed-loop driver used only by the coordinated-omission ablation: a single client
/// issues a request, waits synchronously for its completion, sleeps for the think time
/// and repeats.  Queuing never builds up, which is precisely the measurement error the
/// open-loop design avoids.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop(
    _app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    think_ns: u64,
    clock: RunClock,
    queue: RequestQueue,
    pool: WorkerPool,
    collector: CollectorHandle,
) -> StatsCollector {
    use crate::request::{Request, RequestId};
    use crossbeam::channel::unbounded;

    let record_tx = collector.sender();
    let max_ns = config.max_duration.as_nanos() as u64;
    for i in 0..config.total_requests() as u64 {
        let issued_ns = clock.now_ns();
        if issued_ns > max_ns {
            break;
        }
        let (done_tx, done_rx) = unbounded();
        let request = Request {
            id: RequestId(i),
            payload: factory.next_request(),
            issued_ns,
        };
        if !queue.push(request, issued_ns, Completion::Responder(done_tx)) {
            break;
        }
        if let Ok(completion) = done_rx.recv() {
            let received = clock.now_ns();
            let _ = record_tx.send(completion.into_record(received));
        }
        if think_ns > 0 {
            clock.sleep_until_ns(clock.now_ns() + think_ns);
        }
    }
    drop(record_tx);
    queue.close();
    let _ = pool.join();
    collector.join()
}

/// Runs one cluster measurement in the integrated configuration.
///
/// Each of the `cluster.instances()` server instances gets its own request queue and
/// worker pool (all sharing one run clock); the calling thread is the client-side
/// router, pacing the global open-loop schedule and distributing requests according to
/// `cluster.fanout`.  Fan-out legs are merged last-response-wins by the cross-shard
/// collector.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if the load mode is closed-loop or `apps` does not
/// hold exactly one application per instance.
pub fn run_cluster_integrated(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
) -> Result<ClusterReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "cluster runs require an open-loop load mode".into(),
        ));
    }
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let clock = RunClock::new();
    let width = cluster.fanout_width();
    let hedge = cluster.active_hedge();
    let collector = ClusterCollectorHandle::spawn_with_tags(
        cluster.shards,
        config.warmup_requests as u64,
        config.tags.clone(),
    );
    let queues: Vec<RequestQueue> = (0..apps.len()).map(|_| RequestQueue::new()).collect();
    let mut pools = Vec::with_capacity(apps.len());
    let mut leg_txs: Vec<crossbeam::channel::Sender<crate::queue::ServerCompletion>> =
        Vec::with_capacity(apps.len());
    let mut leg_rxs = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        pools.push(WorkerPool::spawn(
            interfered(app, config, i, clock),
            queues[i].receiver(),
            clock,
            config.worker_threads,
        ));
        let (resp_tx, resp_rx) = crossbeam::channel::unbounded();
        leg_txs.push(resp_tx);
        leg_rxs.push(resp_rx);
    }

    // With hedging active, all completions detour through the hedge engine, which
    // forwards only each leg's first response to the collector and reissues stragglers
    // straight onto the alternate replica's queue.
    let engine = hedge.map(|policy| {
        let queue_txs: Vec<_> = queues.iter().map(RequestQueue::sender).collect();
        let resp_txs = leg_txs.clone();
        let reissue = Box::new(move |instance: usize, request: crate::request::Request| {
            let now = clock.now_ns();
            queue_txs[instance]
                .send(crate::queue::QueuedRequest {
                    request,
                    enqueued_ns: now,
                    completion: Completion::Responder(resp_txs[instance].clone()),
                })
                .is_ok()
        });
        HedgeEngine::spawn(
            policy,
            cluster.clone(),
            width,
            clock,
            collector.sender(),
            reissue,
        )
    });
    let engine_tx = engine.as_ref().map(HedgeEngine::sender);

    let mut forwarders = Vec::with_capacity(apps.len());
    for (i, resp_rx) in leg_rxs.into_iter().enumerate() {
        let record_tx = collector.sender();
        let hedge_tx = engine_tx.clone();
        let shard = i / cluster.replication;
        forwarders.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-fwd-{i}"))
                .spawn(move || {
                    while let Ok(completion) = resp_rx.recv() {
                        // Integrated configuration: the response is delivered the moment
                        // processing completes (shared memory, no transport).
                        let received = completion.completed_ns;
                        let record = completion.into_record(received);
                        match &hedge_tx {
                            Some(tx) => {
                                let _ = tx.send(HedgeMsg::Completed {
                                    shard,
                                    instance: i,
                                    record,
                                });
                            }
                            None => {
                                let _ = record_tx.send((shard, width, record));
                            }
                        }
                    }
                })
                .expect("failed to spawn cluster forwarder"),
        );
    }

    let mut rng = seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .expect("checked open-loop above");
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let max_ns = config.max_duration.as_nanos() as u64;
    'pacing: for mut request in shaper.into_requests() {
        let now = clock.sleep_until_ns(request.issued_ns);
        if now > max_ns {
            break;
        }
        request.issued_ns = now;
        let shards = match cluster.fanout.route(&request.payload, cluster.shards) {
            Route::Shard(shard) => shard..shard + 1,
            Route::AllShards => 0..cluster.shards,
        };
        for shard in shards {
            let i = cluster.instance(shard, request.id.0);
            let leg = request.clone();
            if let Some(tx) = &engine_tx {
                // Announce the leg before the server can possibly answer it.
                let _ = tx.send(HedgeMsg::Dispatched {
                    request: leg.clone(),
                    shard,
                });
            }
            if !queues[i].push(leg, now, Completion::Responder(leg_txs[i].clone())) {
                break 'pacing;
            }
        }
    }
    if let Some(tx) = &engine_tx {
        let _ = tx.send(HedgeMsg::NoMoreDispatches);
    }
    drop(engine_tx);

    drop(leg_txs);
    for queue in queues {
        queue.close();
    }
    for pool in pools {
        let _ = pool.join();
    }
    for forwarder in forwarders {
        let _ = forwarder.join();
    }
    let hedge_stats = engine.map(HedgeEngine::join);
    let stats = collector.join();
    Ok(build_cluster_report(
        apps[0].name(),
        "integrated",
        config,
        cluster,
        &stats,
        hedge_stats,
    ))
}

/// Validates that `apps` provides exactly one application per cluster instance.
pub(crate) fn check_instances(
    apps: &[Arc<dyn ServerApp>],
    cluster: &ClusterConfig,
) -> Result<(), HarnessError> {
    if apps.len() == cluster.instances() {
        Ok(())
    } else {
        Err(HarnessError::Config(format!(
            "cluster of {} shards x {} replicas needs {} apps, got {}",
            cluster.shards,
            cluster.replication,
            cluster.instances(),
            apps.len()
        )))
    }
}

/// Assembles a [`ClusterReport`] from a populated cross-shard collector.
pub(crate) fn build_cluster_report(
    app: &str,
    mode_name: &str,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    stats: &ClusterCollector,
    hedge: Option<HedgeStats>,
) -> ClusterReport {
    let configuration = format!("{mode_name}+{}", cluster.name());
    ClusterReport {
        cluster: build_report(app, &configuration, config, stats.cluster_stats()),
        per_shard: stats
            .shard_stats()
            .iter()
            .map(|shard| build_report(app, &configuration, config, shard))
            .collect(),
        shards: cluster.shards,
        replication: cluster.replication,
        shard_union_sojourn: LatencyStats::from_summary(&stats.merged_shard_sojourn()),
        hedge,
    }
}

/// Converts a collector breakdown into report rows.
fn labelled(rows: Vec<(String, LatencyStats)>) -> Vec<LabeledLatency> {
    rows.into_iter()
        .map(|(name, sojourn)| LabeledLatency { name, sojourn })
        .collect()
}

/// Assembles a [`RunReport`] from a populated collector.
pub(crate) fn build_report(
    app: &str,
    configuration: &str,
    config: &BenchmarkConfig,
    stats: &StatsCollector,
) -> RunReport {
    RunReport {
        app: app.to_string(),
        configuration: configuration.to_string(),
        offered_qps: config.load.offered_qps(),
        achieved_qps: stats.achieved_qps(),
        requests: stats.measured(),
        worker_threads: config.worker_threads,
        duration_ns: stats.span_ns(),
        sojourn: stats.sojourn_stats(),
        service: stats.service_stats(),
        queue: stats.queue_stats(),
        overhead: stats.overhead_stats(),
        per_class: labelled(stats.class_breakdown()),
        per_phase: labelled(stats.phase_breakdown()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(20))
    }

    #[test]
    fn integrated_run_produces_complete_report() {
        let app = echo_app();
        let mut factory = || b"req".to_vec();
        let config = BenchmarkConfig::new(2_000.0, 400)
            .with_warmup(50)
            .with_max_duration(Duration::from_secs(20));
        let report = run_integrated(&app, &mut factory, &config);
        assert_eq!(report.app, "echo");
        assert_eq!(report.configuration, "integrated");
        assert!(report.requests > 350, "measured {}", report.requests);
        assert!(report.achieved_qps > 0.0);
        assert!(report.sojourn.p95_ns >= report.sojourn.p50_ns);
        assert!(report.sojourn.p99_ns >= report.sojourn.p95_ns);
        // Sojourn must be at least the service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns * 0.9);
    }

    #[test]
    fn higher_load_increases_tail_latency() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        // Echo spins ~tens of microseconds; 1k QPS is light, 20k QPS is heavy for one thread.
        let low = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(500.0, 300).with_seed(1),
        );
        let high = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(15_000.0, 300).with_seed(1),
        );
        assert!(
            high.sojourn.p95_ns > low.sojourn.p95_ns,
            "high load p95 {} should exceed low load p95 {}",
            high.sojourn.p95_ns,
            low.sojourn.p95_ns
        );
    }

    #[test]
    fn integrated_cluster_broadcast_waits_for_the_slowest_shard() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..3)
            .map(|_| Arc::new(EchoApp::with_service_us(20)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(3, FanoutPolicy::Broadcast);
        let mut factory = || b"fan".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_max_duration(Duration::from_secs(20));
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        assert_eq!(report.shards, 3);
        assert_eq!(report.per_shard.len(), 3);
        // Every shard serves every request under broadcast.
        assert!(report.cluster.requests > 250, "{}", report.cluster.requests);
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        // The end-to-end tail waits for the slowest shard, so it can never be below a
        // single shard's tail.
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
        assert!(report.p99_amplification() >= 1.0);
    }

    #[test]
    fn integrated_cluster_hash_routing_partitions_requests() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| Arc::new(EchoApp::default()) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(4, FanoutPolicy::HashKey { offset: 0, len: 8 });
        let mut n = 0u64;
        let mut factory = move || {
            n += 1;
            n.to_le_bytes().to_vec()
        };
        let config = BenchmarkConfig::new(2_000.0, 400).with_warmup(0);
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        // Routed mode: each request is served exactly once, split across the shards.
        let shard_total: u64 = report.per_shard.iter().map(|r| r.requests).sum();
        assert_eq!(shard_total, report.cluster.requests);
        let busiest = report.per_shard.iter().map(|r| r.requests).max().unwrap();
        assert!(
            busiest < report.cluster.requests,
            "hashing must not send every request to one shard"
        );
    }

    #[test]
    fn cluster_rejects_wrong_instance_count() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> =
            vec![Arc::new(EchoApp::default()) as Arc<dyn ServerApp>];
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let mut factory = || vec![0u8];
        let config = BenchmarkConfig::new(100.0, 10);
        assert!(run_cluster_integrated(&apps, &mut factory, &config, &cluster).is_err());
    }

    #[test]
    fn closed_loop_mode_completes() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 100)
            .with_warmup(10)
            .with_load(LoadMode::Closed { think_ns: 10_000 });
        let report = run_integrated(&app, &mut factory, &config);
        assert!(report.requests > 80);
        assert!(report.offered_qps.is_none());
    }
}
