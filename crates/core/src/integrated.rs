//! The integrated harness configuration.
//!
//! Client, harness and application live in a single process and communicate through
//! shared memory (paper Fig. 1, upper right).  This is the configuration that the paper
//! recommends for simulation studies; on a real system it measures pure request
//! processing plus queuing, with no network-stack overhead.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::{CollectorHandle, StatsCollector};
use crate::config::BenchmarkConfig;
use crate::queue::{Completion, RequestQueue};
use crate::report::RunReport;
use crate::time::RunClock;
use crate::traffic::{LoadMode, TrafficShaper};
use crate::worker::WorkerPool;
use std::sync::Arc;
use tailbench_workloads::rng::seeded_rng;

/// Runs one measurement in the integrated configuration and returns its report.
///
/// The factory provides request payloads; `config.load` controls their timing.  Warmup
/// requests are issued at the same rate as measured ones and excluded from statistics.
pub fn run_integrated(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
) -> RunReport {
    app.prepare();
    let clock = RunClock::new();
    let queue = RequestQueue::new();
    let collector = CollectorHandle::spawn(config.warmup_requests as u64);
    let pool = WorkerPool::spawn(
        Arc::clone(app),
        queue.receiver(),
        clock,
        config.worker_threads,
    );

    let collector_stats = match &config.load {
        LoadMode::Open(process) => {
            let mut rng = seeded_rng(config.seed, 1);
            let shaper =
                TrafficShaper::build(process, &mut rng, config.total_requests(), 0, || {
                    factory.next_request()
                });
            let record_tx = collector.sender();
            let max_ns = config.max_duration.as_nanos() as u64;
            for mut request in shaper.into_requests() {
                let now = clock.sleep_until_ns(request.issued_ns);
                if now > max_ns {
                    break;
                }
                // The request is stamped with its *actual* issue time so pacing jitter is
                // charged to the harness, not hidden.
                request.issued_ns = now;
                if !queue.push(request, now, Completion::Collector(record_tx.clone())) {
                    break;
                }
            }
            drop(record_tx);
            queue.close();
            let _ = pool.join();
            collector.join()
        }
        LoadMode::Closed { think_ns } => run_closed_loop(
            app, factory, config, *think_ns, clock, queue, pool, collector,
        ),
    };

    build_report(app.name(), "integrated", config, &collector_stats)
}

/// Closed-loop driver used only by the coordinated-omission ablation: a single client
/// issues a request, waits synchronously for its completion, sleeps for the think time
/// and repeats.  Queuing never builds up, which is precisely the measurement error the
/// open-loop design avoids.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop(
    _app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    think_ns: u64,
    clock: RunClock,
    queue: RequestQueue,
    pool: WorkerPool,
    collector: CollectorHandle,
) -> StatsCollector {
    use crate::request::{Request, RequestId};
    use crossbeam::channel::unbounded;

    let record_tx = collector.sender();
    let max_ns = config.max_duration.as_nanos() as u64;
    for i in 0..config.total_requests() as u64 {
        let issued_ns = clock.now_ns();
        if issued_ns > max_ns {
            break;
        }
        let (done_tx, done_rx) = unbounded();
        let request = Request {
            id: RequestId(i),
            payload: factory.next_request(),
            issued_ns,
        };
        if !queue.push(request, issued_ns, Completion::Responder(done_tx)) {
            break;
        }
        if let Ok(completion) = done_rx.recv() {
            let received = clock.now_ns();
            let _ = record_tx.send(completion.into_record(received));
        }
        if think_ns > 0 {
            clock.sleep_until_ns(clock.now_ns() + think_ns);
        }
    }
    drop(record_tx);
    queue.close();
    let _ = pool.join();
    collector.join()
}

/// Assembles a [`RunReport`] from a populated collector.
pub(crate) fn build_report(
    app: &str,
    configuration: &str,
    config: &BenchmarkConfig,
    stats: &StatsCollector,
) -> RunReport {
    RunReport {
        app: app.to_string(),
        configuration: configuration.to_string(),
        offered_qps: config.load.offered_qps(),
        achieved_qps: stats.achieved_qps(),
        requests: stats.measured(),
        worker_threads: config.worker_threads,
        duration_ns: stats.span_ns(),
        sojourn: stats.sojourn_stats(),
        service: stats.service_stats(),
        queue: stats.queue_stats(),
        overhead: stats.overhead_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(20))
    }

    #[test]
    fn integrated_run_produces_complete_report() {
        let app = echo_app();
        let mut factory = || b"req".to_vec();
        let config = BenchmarkConfig::new(2_000.0, 400)
            .with_warmup(50)
            .with_max_duration(Duration::from_secs(20));
        let report = run_integrated(&app, &mut factory, &config);
        assert_eq!(report.app, "echo");
        assert_eq!(report.configuration, "integrated");
        assert!(report.requests > 350, "measured {}", report.requests);
        assert!(report.achieved_qps > 0.0);
        assert!(report.sojourn.p95_ns >= report.sojourn.p50_ns);
        assert!(report.sojourn.p99_ns >= report.sojourn.p95_ns);
        // Sojourn must be at least the service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns * 0.9);
    }

    #[test]
    fn higher_load_increases_tail_latency() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        // Echo spins ~tens of microseconds; 1k QPS is light, 20k QPS is heavy for one thread.
        let low = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(500.0, 300).with_seed(1),
        );
        let high = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(15_000.0, 300).with_seed(1),
        );
        assert!(
            high.sojourn.p95_ns > low.sojourn.p95_ns,
            "high load p95 {} should exceed low load p95 {}",
            high.sojourn.p95_ns,
            low.sojourn.p95_ns
        );
    }

    #[test]
    fn closed_loop_mode_completes() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 100)
            .with_warmup(10)
            .with_load(LoadMode::Closed { think_ns: 10_000 });
        let report = run_integrated(&app, &mut factory, &config);
        assert!(report.requests > 80);
        assert!(report.offered_qps.is_none());
    }
}
