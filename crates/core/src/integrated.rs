//! The integrated harness configuration.
//!
//! Client, harness and application live in a single process and communicate through
//! shared memory (paper Fig. 1, upper right).  This is the configuration that the paper
//! recommends for simulation studies; on a real system it measures pure request
//! processing plus queuing, with no network-stack overhead.
//!
//! Measurement pipeline: each worker records completions into its own collector shard
//! (merged at join — no channel or collector thread on the hot path), the request
//! queue applies the configured admission policy and reports depth/drop accounting,
//! and the pacing loop records its per-request issue error.  All three surface as
//! first-class [`RunReport`] fields.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::{ClusterCollector, StatsCollector};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::hedge::{HedgeEngine, HedgeMsg};
use crate::interference::InterferedApp;
use crate::pool::BufferPool;
use crate::queue::{Completion, PushOutcome, RequestQueue};
use crate::report::{
    ClusterReport, HedgeStats, LabeledLatency, LatencyStats, QueueSummary, RunReport,
};
use crate::time::{PacingRecorder, RunClock};
use crate::traffic::{LoadMode, TrafficShaper};
use crate::worker::WorkerPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tailbench_workloads::rng::seeded_rng;

/// Wraps `app` with the configuration's interference plan for `instance` (identity when
/// the plan is empty), sharing the run's clock so fault windows line up with the
/// request timeline.
pub(crate) fn interfered(
    app: &Arc<dyn ServerApp>,
    config: &BenchmarkConfig,
    instance: usize,
    clock: RunClock,
) -> Arc<dyn ServerApp> {
    if config.interference.is_empty() {
        Arc::clone(app)
    } else {
        Arc::new(InterferedApp::new(
            Arc::clone(app),
            &config.interference,
            instance,
            clock,
        ))
    }
}

/// The statistics-shard prototype for a run: warmup count plus tags.
pub(crate) fn shard_proto(config: &BenchmarkConfig) -> StatsCollector {
    StatsCollector::new(config.warmup_requests as u64).with_tags(config.tags.clone())
}

/// Runs one measurement in the integrated configuration and returns its report.
///
/// The factory provides request payloads; `config.load` controls their timing.  Warmup
/// requests are issued at the same rate as measured ones and excluded from statistics.
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if worker threads cannot be spawned and
/// [`HarnessError::Internal`] if a harness thread panics mid-run.
pub fn run_integrated(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
) -> Result<RunReport, HarnessError> {
    app.prepare();
    let clock = RunClock::new();
    let serve_app = interfered(app, config, 0, clock);
    let queue = RequestQueue::with_policy(config.admission);
    let observer = queue.observer();
    let pool = WorkerPool::spawn(
        serve_app,
        queue.receiver(),
        clock,
        config.worker_threads,
        shard_proto(config),
        None,
    )?;

    let (collector_stats, pacing) = match &config.load {
        LoadMode::Closed { think_ns } => {
            run_closed_loop(factory, config, *think_ns, clock, queue, pool)?
        }
        open => {
            let mut rng = seeded_rng(config.seed, 1);
            let times = open
                .schedule(&mut rng, config.total_requests())
                .ok_or_else(|| {
                    HarnessError::Internal("open-loop mode produced no schedule".into())
                })?;
            let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
            let max_ns = config.max_duration.as_nanos() as u64;
            let mut pacing = PacingRecorder::new();
            for mut request in shaper.into_requests() {
                let scheduled_ns = request.issued_ns;
                let now = clock.sleep_until_ns(scheduled_ns);
                if now > max_ns {
                    break;
                }
                pacing.record(scheduled_ns, now);
                // The request is stamped with its *actual* issue time so pacing jitter is
                // charged to the harness, not hidden.
                request.issued_ns = now;
                if queue.push(request, now, Completion::Inline) == PushOutcome::Closed {
                    break;
                }
            }
            queue.close();
            (pool.join()?.stats, pacing)
        }
    };

    let mut report = build_report(app.name(), "integrated", config, &collector_stats);
    report.queue_depth = observer.summary();
    report.pacing = pacing.stats();
    Ok(report)
}

/// Closed-loop driver used only by the coordinated-omission ablation: a single client
/// issues a request, waits synchronously for its completion, sleeps for the think time
/// and repeats.  Queuing never builds up, which is precisely the measurement error the
/// open-loop design avoids.  The client thread records completions into its own
/// collector directly; the completion channel is created once and reused for every
/// request.
fn run_closed_loop(
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    think_ns: u64,
    clock: RunClock,
    queue: RequestQueue,
    pool: WorkerPool,
) -> Result<(StatsCollector, PacingRecorder), HarnessError> {
    use crate::request::{Request, RequestId};
    use crossbeam::channel::unbounded;

    let mut collector = shard_proto(config);
    let max_ns = config.max_duration.as_nanos() as u64;
    let (done_tx, done_rx) = unbounded();
    for i in 0..config.total_requests() as u64 {
        let issued_ns = clock.now_ns();
        if issued_ns > max_ns {
            break;
        }
        let request = Request {
            id: RequestId(i),
            payload: factory.next_request(),
            issued_ns,
        };
        if queue.push(request, issued_ns, Completion::Responder(done_tx.clone()))
            != PushOutcome::Accepted
        {
            break;
        }
        if let Ok(completion) = done_rx.recv() {
            let received = clock.now_ns();
            collector.record(&completion.into_record(received));
        }
        if think_ns > 0 {
            clock.sleep_until_ns(clock.now_ns() + think_ns);
        }
    }
    drop(done_tx);
    queue.close();
    let workers = pool.join()?;
    collector.merge(&workers.stats);
    Ok((collector, PacingRecorder::new()))
}

/// Runs one cluster measurement in the integrated configuration.
///
/// Each of the `cluster.instances()` server instances gets its own request queue and
/// worker pool (all sharing one run clock); the calling thread is the client-side
/// router, pacing the global open-loop schedule and distributing requests according to
/// `cluster.fanout`.  Fan-out legs are merged last-response-wins: each instance's
/// forwarder thread records into a partial cross-shard collector, and the partials are
/// merged when the run tears down (the hedge engine, when active, already serializes
/// completions and owns the collector itself).  Leg payload clones come from a shared
/// buffer pool and are recycled by the workers.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if the load mode is closed-loop or `apps` does not
/// hold exactly one application per instance.
pub fn run_cluster_integrated(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
) -> Result<ClusterReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "cluster runs require an open-loop load mode".into(),
        ));
    }
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let clock = RunClock::new();
    let width = cluster.fanout_width();
    let hedge = cluster.active_hedge();
    let tied = cluster.active_tied();
    let warmup = config.warmup_requests as u64;
    let buffers = Arc::new(BufferPool::default());
    // Per-instance in-flight counts (accepted pushes minus completions/retractions):
    // the live load signal for the LeastLoaded / PowerOfTwo replica selectors.
    let outstanding: Arc<Vec<AtomicUsize>> =
        Arc::new((0..apps.len()).map(|_| AtomicUsize::new(0)).collect());
    let new_cluster_collector =
        || ClusterCollector::new(cluster.shards, warmup).with_tags(config.tags.clone());
    let queues: Vec<RequestQueue> = (0..apps.len())
        .map(|_| RequestQueue::with_policy(config.admission))
        .collect();
    let observers: Vec<_> = queues.iter().map(RequestQueue::observer).collect();
    let mut pools = Vec::with_capacity(apps.len());
    let mut leg_txs: Vec<crossbeam::channel::Sender<crate::queue::ServerCompletion>> =
        Vec::with_capacity(apps.len());
    let mut leg_rxs = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        pools.push(WorkerPool::spawn(
            interfered(app, config, i, clock),
            queues[i].receiver(),
            clock,
            config.worker_threads,
            StatsCollector::new(warmup),
            Some(Arc::clone(&buffers)),
        )?);
        let (resp_tx, resp_rx) = crossbeam::channel::unbounded();
        leg_txs.push(resp_tx);
        leg_rxs.push(resp_rx);
    }

    // With hedging or tied requests active, all completions detour through the hedge
    // engine, which forwards only each leg's first response into the collector it owns,
    // reissues hedge stragglers straight onto the alternate replica's queue, and
    // retracts still-queued tied losers.
    let engine = if hedge.is_some() || tied {
        let queue_txs: Vec<_> = queues.iter().map(RequestQueue::sender).collect();
        let resp_txs = leg_txs.clone();
        let inflight = Arc::clone(&outstanding);
        let reissue = Box::new(move |instance: usize, request: crate::request::Request| {
            let now = clock.now_ns();
            let accepted = queue_txs[instance].push(
                request,
                now,
                Completion::Responder(resp_txs[instance].clone()),
            ) == PushOutcome::Accepted;
            if accepted {
                inflight[instance].fetch_add(1, Ordering::Relaxed);
            }
            accepted
        });
        let cancel_queues: Vec<_> = queues.iter().map(RequestQueue::sender).collect();
        let inflight = Arc::clone(&outstanding);
        let retract = Box::new(move |instance: usize, id: u64| {
            let cancelled = cancel_queues[instance].cancel(crate::request::RequestId(id));
            if cancelled {
                inflight[instance].fetch_sub(1, Ordering::Relaxed);
            }
            cancelled
        });
        Some(HedgeEngine::spawn(
            hedge,
            cluster.clone(),
            width,
            clock,
            new_cluster_collector(),
            reissue,
            retract,
        )?)
    } else {
        None
    };
    let engine_tx = engine.as_ref().map(HedgeEngine::sender);

    let mut forwarders = Vec::with_capacity(apps.len());
    for (i, resp_rx) in leg_rxs.into_iter().enumerate() {
        let hedge_tx = engine_tx.clone();
        let shard = i / cluster.replication;
        let mut partial = new_cluster_collector();
        let inflight = Arc::clone(&outstanding);
        forwarders.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-fwd-{i}"))
                .spawn(move || {
                    while let Ok(completion) = resp_rx.recv() {
                        inflight[i].fetch_sub(1, Ordering::Relaxed);
                        // Integrated configuration: the response is delivered the moment
                        // processing completes (shared memory, no transport).
                        let received = completion.completed_ns;
                        let record = completion.into_record(received);
                        match &hedge_tx {
                            Some(tx) => {
                                let _ = tx.send(HedgeMsg::Completed {
                                    shard,
                                    instance: i,
                                    record,
                                });
                            }
                            None => {
                                let _ = partial.record_leg(shard, record, width);
                            }
                        }
                    }
                    partial
                })?,
        );
    }

    let mut rng = seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .ok_or_else(|| HarnessError::Internal("open-loop mode produced no schedule".into()))?;
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let max_ns = config.max_duration.as_nanos() as u64;
    let mut pacing = PacingRecorder::new();
    'pacing: for mut request in shaper.into_requests() {
        let scheduled_ns = request.issued_ns;
        let now = clock.sleep_until_ns(scheduled_ns);
        if now > max_ns {
            break;
        }
        pacing.record(scheduled_ns, now);
        request.issued_ns = now;
        let shards = match cluster.fanout.route(&request.payload, cluster.shards) {
            Route::Shard(shard) => shard..shard + 1,
            Route::AllShards => 0..cluster.shards,
        };
        for shard in shards {
            let primary = cluster.route_replica(shard, request.id.0, config.seed, &|i| {
                outstanding[i].load(Ordering::Relaxed)
            });
            let copies: &[usize] = if tied {
                let secondary = cluster.secondary_instance(shard, primary);
                if let Some(tx) = &engine_tx {
                    // Announce the tied pair before either server can answer it.
                    let _ = tx.send(HedgeMsg::DispatchedTied {
                        id: request.id.0,
                        shard,
                        primary,
                        secondary,
                    });
                }
                &[primary, secondary]
            } else {
                &[primary]
            };
            for (slot, &i) in copies.iter().enumerate() {
                let leg = crate::request::Request {
                    id: request.id,
                    payload: buffers.duplicate(&request.payload),
                    issued_ns: request.issued_ns,
                };
                if !tied && slot == 0 {
                    if let Some(tx) = &engine_tx {
                        // Announce the leg before the server can possibly answer it.
                        let _ = tx.send(HedgeMsg::Dispatched {
                            request: leg.clone(),
                            shard,
                            instance: i,
                        });
                    }
                }
                match queues[i].push(leg, now, Completion::Responder(leg_txs[i].clone())) {
                    PushOutcome::Accepted => {
                        outstanding[i].fetch_add(1, Ordering::Relaxed);
                    }
                    PushOutcome::Dropped => {
                        // The copy was shed at admission: retract its tracking so the
                        // engine neither hedges a request that can no longer complete
                        // its fan-out nor counts phantom stragglers.
                        if let Some(tx) = &engine_tx {
                            let _ = tx.send(HedgeMsg::Cancelled {
                                id: request.id.0,
                                shard,
                            });
                        }
                    }
                    PushOutcome::Closed => break 'pacing,
                }
            }
        }
    }
    if let Some(tx) = &engine_tx {
        let _ = tx.send(HedgeMsg::NoMoreDispatches);
    }
    drop(engine_tx);

    drop(leg_txs);
    for queue in queues {
        queue.close();
    }
    for pool in pools {
        pool.join()?;
    }
    let mut partials = Vec::with_capacity(forwarders.len());
    for forwarder in forwarders {
        partials.push(
            forwarder
                .join()
                .map_err(|_| HarnessError::Internal("cluster forwarder thread panicked".into()))?,
        );
    }
    let (stats, hedge_stats) = match engine {
        Some(engine) => {
            let (hedge_stats, collector) = engine.join()?;
            (collector, Some(hedge_stats))
        }
        None => {
            let mut merged = new_cluster_collector();
            for partial in partials {
                merged.merge(partial);
            }
            (merged, None)
        }
    };
    let queue_summaries: Vec<QueueSummary> = observers.iter().map(|o| o.summary()).collect();
    let mut report = build_cluster_report(
        apps[0].name(),
        "integrated",
        config,
        cluster,
        &stats,
        hedge_stats,
    );
    report.cluster.queue_depth = QueueSummary::aggregate(&queue_summaries);
    report.cluster.pacing = pacing.stats();
    Ok(report)
}

/// Validates that `apps` provides exactly one application per cluster instance.
pub(crate) fn check_instances(
    apps: &[Arc<dyn ServerApp>],
    cluster: &ClusterConfig,
) -> Result<(), HarnessError> {
    if apps.len() == cluster.instances() {
        Ok(())
    } else {
        Err(HarnessError::Config(format!(
            "cluster of {} shards x {} replicas needs {} apps, got {}",
            cluster.shards,
            cluster.replication,
            cluster.instances(),
            apps.len()
        )))
    }
}

/// Assembles a [`ClusterReport`] from a populated cross-shard collector.
pub(crate) fn build_cluster_report(
    app: &str,
    mode_name: &str,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    stats: &ClusterCollector,
    hedge: Option<HedgeStats>,
) -> ClusterReport {
    let configuration = format!("{mode_name}+{}", cluster.name());
    ClusterReport {
        cluster: build_report(app, &configuration, config, stats.cluster_stats()),
        per_shard: stats
            .shard_stats()
            .iter()
            .map(|shard| build_report(app, &configuration, config, shard))
            .collect(),
        shards: cluster.shards,
        replication: cluster.replication,
        shard_union_sojourn: LatencyStats::from_summary(&stats.merged_shard_sojourn()),
        hedge,
        unmerged: stats.unmerged() as u64,
    }
}

/// Converts a collector breakdown into report rows.
fn labelled(rows: Vec<(String, LatencyStats)>) -> Vec<LabeledLatency> {
    rows.into_iter()
        .map(|(name, sojourn)| LabeledLatency { name, sojourn })
        .collect()
}

/// Assembles a [`RunReport`] from a populated collector.  Queue and pacing summaries
/// default to empty; the runners fill them in where the path has a queue/pacer.
pub(crate) fn build_report(
    app: &str,
    configuration: &str,
    config: &BenchmarkConfig,
    stats: &StatsCollector,
) -> RunReport {
    RunReport {
        app: app.to_string(),
        configuration: configuration.to_string(),
        offered_qps: config.load.offered_qps(),
        achieved_qps: stats.achieved_qps(),
        requests: stats.measured(),
        worker_threads: config.worker_threads,
        duration_ns: stats.span_ns(),
        sojourn: stats.sojourn_stats(),
        service: stats.service_stats(),
        queue: stats.queue_stats(),
        overhead: stats.overhead_stats(),
        per_class: labelled(stats.class_breakdown()),
        per_phase: labelled(stats.phase_breakdown()),
        queue_depth: QueueSummary::default(),
        pacing: LatencyStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(20))
    }

    #[test]
    fn integrated_run_produces_complete_report() {
        let app = echo_app();
        let mut factory = || b"req".to_vec();
        let config = BenchmarkConfig::new(2_000.0, 400)
            .with_warmup(50)
            .with_max_duration(Duration::from_secs(20));
        let report = run_integrated(&app, &mut factory, &config).expect("integrated run");
        assert_eq!(report.app, "echo");
        assert_eq!(report.configuration, "integrated");
        assert!(report.requests > 350, "measured {}", report.requests);
        assert!(report.achieved_qps > 0.0);
        assert!(report.sojourn.p95_ns >= report.sojourn.p50_ns);
        assert!(report.sojourn.p99_ns >= report.sojourn.p95_ns);
        // Sojourn must be at least the service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns * 0.9);
        // The measurement pipeline reports its own behaviour.
        assert_eq!(report.queue_depth.policy, "unbounded");
        assert_eq!(report.queue_depth.dropped, 0);
        assert!(report.queue_depth.accepted >= report.requests);
        assert!(report.queue_depth.peak_depth >= 1);
        assert!(report.pacing.count >= report.requests);
    }

    #[test]
    fn higher_load_increases_tail_latency() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        // Echo spins ~tens of microseconds; 1k QPS is light, 20k QPS is heavy for one thread.
        let low = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(500.0, 300).with_seed(1),
        )
        .expect("integrated run");
        let high = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(15_000.0, 300).with_seed(1),
        )
        .expect("integrated run");
        assert!(
            high.sojourn.p95_ns > low.sojourn.p95_ns,
            "high load p95 {} should exceed low load p95 {}",
            high.sojourn.p95_ns,
            low.sojourn.p95_ns
        );
        // Overload is visible in the depth accounting, not just the sojourn tail.
        assert!(high.queue_depth.peak_depth > low.queue_depth.peak_depth);
    }

    #[test]
    fn drop_admission_sheds_overload_and_reports_it() {
        use crate::queue::AdmissionPolicy;
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        // ~20 us service at 25k QPS: far beyond one thread's capacity, with a 16-deep
        // queue every burst beyond 16 is shed and counted.
        let config = BenchmarkConfig::new(25_000.0, 600)
            .with_warmup(0)
            .with_seed(11)
            .with_admission(AdmissionPolicy::Drop { capacity: 16 });
        let report = run_integrated(&app, &mut factory, &config).expect("integrated run");
        assert_eq!(report.queue_depth.policy, "drop(16)");
        assert!(report.queue_depth.dropped > 0, "overload must shed");
        assert!(report.queue_depth.peak_depth <= 16);
        assert!(report.queue_depth.drop_rate() > 0.0);
        assert!(report.requests < 600, "dropped requests are never measured");
        // The queue never grows past the cap, so the sojourn tail stays bounded by
        // roughly capacity x service time (plus scheduling noise).
        assert!(report.sojourn.max_ns < 1_000_000_000);
    }

    #[test]
    fn integrated_cluster_broadcast_waits_for_the_slowest_shard() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..3)
            .map(|_| Arc::new(EchoApp::with_service_us(20)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(3, FanoutPolicy::Broadcast);
        let mut factory = || b"fan".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_max_duration(Duration::from_secs(20));
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        assert_eq!(report.shards, 3);
        assert_eq!(report.per_shard.len(), 3);
        // Every shard serves every request under broadcast.
        assert!(report.cluster.requests > 250, "{}", report.cluster.requests);
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        // The end-to-end tail waits for the slowest shard, so it can never be below a
        // single shard's tail.
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
        assert!(report.p99_amplification() >= 1.0);
        // The aggregate queue summary covers all three instances' queues.
        assert!(report.cluster.queue_depth.accepted >= 3 * report.cluster.requests);
        assert!(report.cluster.pacing.count >= report.cluster.requests);
    }

    #[test]
    fn integrated_cluster_hash_routing_partitions_requests() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| Arc::new(EchoApp::default()) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(4, FanoutPolicy::HashKey { offset: 0, len: 8 });
        let mut n = 0u64;
        let mut factory = move || {
            n += 1;
            n.to_le_bytes().to_vec()
        };
        let config = BenchmarkConfig::new(2_000.0, 400).with_warmup(0);
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        // Routed mode: each request is served exactly once, split across the shards.
        let shard_total: u64 = report.per_shard.iter().map(|r| r.requests).sum();
        assert_eq!(shard_total, report.cluster.requests);
        let busiest = report.per_shard.iter().map(|r| r.requests).max().unwrap();
        assert!(
            busiest < report.cluster.requests,
            "hashing must not send every request to one shard"
        );
    }

    #[test]
    fn integrated_cluster_serves_tied_requests_first_response_wins() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| Arc::new(EchoApp::with_service_us(20)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast)
            .with_replication(2)
            .with_tied(true);
        let mut factory = || b"tie".to_vec();
        let config = BenchmarkConfig::new(800.0, 200)
            .with_warmup(20)
            .with_max_duration(Duration::from_secs(30));
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        assert!(report.cluster.requests > 150, "{}", report.cluster.requests);
        let stats = report.hedge.expect("tied runs report through hedge stats");
        assert!(
            stats.issued >= 2 * report.cluster.requests,
            "every measured leg ({}) must have issued a tied copy ({})",
            report.cluster.requests,
            stats.issued
        );
        // Each leg is recorded exactly once despite two copies in flight.
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
    }

    #[test]
    fn integrated_cluster_least_loaded_selector_serves_all_requests() {
        use crate::config::{ClusterConfig, FanoutPolicy, ReplicaSelector};
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| Arc::new(EchoApp::with_service_us(20)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast)
            .with_replication(2)
            .with_selector(ReplicaSelector::LeastLoaded);
        let mut factory = || b"ll".to_vec();
        let config = BenchmarkConfig::new(800.0, 200)
            .with_warmup(20)
            .with_max_duration(Duration::from_secs(30));
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        assert!(report.cluster.requests > 150, "{}", report.cluster.requests);
        assert!(report.cluster.configuration.contains("least-loaded"));
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
    }

    #[test]
    fn cluster_rejects_wrong_instance_count() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> =
            vec![Arc::new(EchoApp::default()) as Arc<dyn ServerApp>];
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let mut factory = || vec![0u8];
        let config = BenchmarkConfig::new(100.0, 10);
        assert!(run_cluster_integrated(&apps, &mut factory, &config, &cluster).is_err());
    }

    #[test]
    fn closed_loop_mode_completes() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 100)
            .with_warmup(10)
            .with_load(LoadMode::Closed { think_ns: 10_000 });
        let report = run_integrated(&app, &mut factory, &config).expect("integrated run");
        assert!(report.requests > 80);
        assert!(report.offered_qps.is_none());
        // Closed loop: no open-loop schedule, so no pacing error to report.
        assert_eq!(report.pacing.count, 0);
        assert_eq!(report.queue_depth.dropped, 0);
    }
}
