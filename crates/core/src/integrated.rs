//! The integrated harness configuration.
//!
//! Client, harness and application live in a single process and communicate through
//! shared memory (paper Fig. 1, upper right).  This is the configuration that the paper
//! recommends for simulation studies; on a real system it measures pure request
//! processing plus queuing, with no network-stack overhead.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::{ClusterCollector, ClusterCollectorHandle, CollectorHandle, StatsCollector};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::queue::{Completion, RequestQueue};
use crate::report::{ClusterReport, LatencyStats, RunReport};
use crate::time::RunClock;
use crate::traffic::{LoadMode, TrafficShaper};
use crate::worker::WorkerPool;
use std::sync::Arc;
use tailbench_workloads::rng::seeded_rng;

/// Runs one measurement in the integrated configuration and returns its report.
///
/// The factory provides request payloads; `config.load` controls their timing.  Warmup
/// requests are issued at the same rate as measured ones and excluded from statistics.
pub fn run_integrated(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
) -> RunReport {
    app.prepare();
    let clock = RunClock::new();
    let queue = RequestQueue::new();
    let collector = CollectorHandle::spawn(config.warmup_requests as u64);
    let pool = WorkerPool::spawn(
        Arc::clone(app),
        queue.receiver(),
        clock,
        config.worker_threads,
    );

    let collector_stats = match &config.load {
        LoadMode::Open(process) => {
            let mut rng = seeded_rng(config.seed, 1);
            let shaper =
                TrafficShaper::build(process, &mut rng, config.total_requests(), 0, || {
                    factory.next_request()
                });
            let record_tx = collector.sender();
            let max_ns = config.max_duration.as_nanos() as u64;
            for mut request in shaper.into_requests() {
                let now = clock.sleep_until_ns(request.issued_ns);
                if now > max_ns {
                    break;
                }
                // The request is stamped with its *actual* issue time so pacing jitter is
                // charged to the harness, not hidden.
                request.issued_ns = now;
                if !queue.push(request, now, Completion::Collector(record_tx.clone())) {
                    break;
                }
            }
            drop(record_tx);
            queue.close();
            let _ = pool.join();
            collector.join()
        }
        LoadMode::Closed { think_ns } => run_closed_loop(
            app, factory, config, *think_ns, clock, queue, pool, collector,
        ),
    };

    build_report(app.name(), "integrated", config, &collector_stats)
}

/// Closed-loop driver used only by the coordinated-omission ablation: a single client
/// issues a request, waits synchronously for its completion, sleeps for the think time
/// and repeats.  Queuing never builds up, which is precisely the measurement error the
/// open-loop design avoids.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop(
    _app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    think_ns: u64,
    clock: RunClock,
    queue: RequestQueue,
    pool: WorkerPool,
    collector: CollectorHandle,
) -> StatsCollector {
    use crate::request::{Request, RequestId};
    use crossbeam::channel::unbounded;

    let record_tx = collector.sender();
    let max_ns = config.max_duration.as_nanos() as u64;
    for i in 0..config.total_requests() as u64 {
        let issued_ns = clock.now_ns();
        if issued_ns > max_ns {
            break;
        }
        let (done_tx, done_rx) = unbounded();
        let request = Request {
            id: RequestId(i),
            payload: factory.next_request(),
            issued_ns,
        };
        if !queue.push(request, issued_ns, Completion::Responder(done_tx)) {
            break;
        }
        if let Ok(completion) = done_rx.recv() {
            let received = clock.now_ns();
            let _ = record_tx.send(completion.into_record(received));
        }
        if think_ns > 0 {
            clock.sleep_until_ns(clock.now_ns() + think_ns);
        }
    }
    drop(record_tx);
    queue.close();
    let _ = pool.join();
    collector.join()
}

/// Runs one cluster measurement in the integrated configuration.
///
/// Each of the `cluster.instances()` server instances gets its own request queue and
/// worker pool (all sharing one run clock); the calling thread is the client-side
/// router, pacing the global open-loop schedule and distributing requests according to
/// `cluster.fanout`.  Fan-out legs are merged last-response-wins by the cross-shard
/// collector.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if the load mode is closed-loop or `apps` does not
/// hold exactly one application per instance.
pub fn run_cluster_integrated(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
) -> Result<ClusterReport, HarnessError> {
    let LoadMode::Open(process) = &config.load else {
        return Err(HarnessError::Config(
            "cluster runs require an open-loop load mode".into(),
        ));
    };
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let clock = RunClock::new();
    let width = cluster.fanout_width();
    let collector = ClusterCollectorHandle::spawn(cluster.shards, config.warmup_requests as u64);
    let queues: Vec<RequestQueue> = (0..apps.len()).map(|_| RequestQueue::new()).collect();
    let mut pools = Vec::with_capacity(apps.len());
    let mut forwarders = Vec::with_capacity(apps.len());
    let mut leg_txs: Vec<crossbeam::channel::Sender<crate::queue::ServerCompletion>> =
        Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        pools.push(WorkerPool::spawn(
            Arc::clone(app),
            queues[i].receiver(),
            clock,
            config.worker_threads,
        ));
        let (resp_tx, resp_rx) = crossbeam::channel::unbounded();
        leg_txs.push(resp_tx);
        let record_tx = collector.sender();
        let shard = i / cluster.replication;
        forwarders.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-fwd-{i}"))
                .spawn(move || {
                    while let Ok(completion) = resp_rx.recv() {
                        // Integrated configuration: the response is delivered the moment
                        // processing completes (shared memory, no transport).
                        let received = completion.completed_ns;
                        let _ = record_tx.send((shard, width, completion.into_record(received)));
                    }
                })
                .expect("failed to spawn cluster forwarder"),
        );
    }

    let mut rng = seeded_rng(config.seed, 1);
    let shaper = TrafficShaper::build(process, &mut rng, config.total_requests(), 0, || {
        factory.next_request()
    });
    let max_ns = config.max_duration.as_nanos() as u64;
    'pacing: for mut request in shaper.into_requests() {
        let now = clock.sleep_until_ns(request.issued_ns);
        if now > max_ns {
            break;
        }
        request.issued_ns = now;
        match cluster.fanout.route(&request.payload, cluster.shards) {
            Route::Shard(shard) => {
                let i = cluster.instance(shard, request.id.0);
                if !queues[i].push(request, now, Completion::Responder(leg_txs[i].clone())) {
                    break 'pacing;
                }
            }
            Route::AllShards => {
                for shard in 0..cluster.shards {
                    let i = cluster.instance(shard, request.id.0);
                    let leg = request.clone();
                    if !queues[i].push(leg, now, Completion::Responder(leg_txs[i].clone())) {
                        break 'pacing;
                    }
                }
            }
        }
    }

    drop(leg_txs);
    for queue in queues {
        queue.close();
    }
    for pool in pools {
        let _ = pool.join();
    }
    for forwarder in forwarders {
        let _ = forwarder.join();
    }
    let stats = collector.join();
    Ok(build_cluster_report(
        apps[0].name(),
        "integrated",
        config,
        cluster,
        &stats,
    ))
}

/// Validates that `apps` provides exactly one application per cluster instance.
pub(crate) fn check_instances(
    apps: &[Arc<dyn ServerApp>],
    cluster: &ClusterConfig,
) -> Result<(), HarnessError> {
    if apps.len() == cluster.instances() {
        Ok(())
    } else {
        Err(HarnessError::Config(format!(
            "cluster of {} shards x {} replicas needs {} apps, got {}",
            cluster.shards,
            cluster.replication,
            cluster.instances(),
            apps.len()
        )))
    }
}

/// Assembles a [`ClusterReport`] from a populated cross-shard collector.
pub(crate) fn build_cluster_report(
    app: &str,
    mode_name: &str,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    stats: &ClusterCollector,
) -> ClusterReport {
    let configuration = format!("{mode_name}+{}", cluster.name());
    ClusterReport {
        cluster: build_report(app, &configuration, config, stats.cluster_stats()),
        per_shard: stats
            .shard_stats()
            .iter()
            .map(|shard| build_report(app, &configuration, config, shard))
            .collect(),
        shards: cluster.shards,
        replication: cluster.replication,
        shard_union_sojourn: LatencyStats::from_summary(&stats.merged_shard_sojourn()),
    }
}

/// Assembles a [`RunReport`] from a populated collector.
pub(crate) fn build_report(
    app: &str,
    configuration: &str,
    config: &BenchmarkConfig,
    stats: &StatsCollector,
) -> RunReport {
    RunReport {
        app: app.to_string(),
        configuration: configuration.to_string(),
        offered_qps: config.load.offered_qps(),
        achieved_qps: stats.achieved_qps(),
        requests: stats.measured(),
        worker_threads: config.worker_threads,
        duration_ns: stats.span_ns(),
        sojourn: stats.sojourn_stats(),
        service: stats.service_stats(),
        queue: stats.queue_stats(),
        overhead: stats.overhead_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(20))
    }

    #[test]
    fn integrated_run_produces_complete_report() {
        let app = echo_app();
        let mut factory = || b"req".to_vec();
        let config = BenchmarkConfig::new(2_000.0, 400)
            .with_warmup(50)
            .with_max_duration(Duration::from_secs(20));
        let report = run_integrated(&app, &mut factory, &config);
        assert_eq!(report.app, "echo");
        assert_eq!(report.configuration, "integrated");
        assert!(report.requests > 350, "measured {}", report.requests);
        assert!(report.achieved_qps > 0.0);
        assert!(report.sojourn.p95_ns >= report.sojourn.p50_ns);
        assert!(report.sojourn.p99_ns >= report.sojourn.p95_ns);
        // Sojourn must be at least the service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns * 0.9);
    }

    #[test]
    fn higher_load_increases_tail_latency() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        // Echo spins ~tens of microseconds; 1k QPS is light, 20k QPS is heavy for one thread.
        let low = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(500.0, 300).with_seed(1),
        );
        let high = run_integrated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(15_000.0, 300).with_seed(1),
        );
        assert!(
            high.sojourn.p95_ns > low.sojourn.p95_ns,
            "high load p95 {} should exceed low load p95 {}",
            high.sojourn.p95_ns,
            low.sojourn.p95_ns
        );
    }

    #[test]
    fn integrated_cluster_broadcast_waits_for_the_slowest_shard() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..3)
            .map(|_| Arc::new(EchoApp::with_service_us(20)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(3, FanoutPolicy::Broadcast);
        let mut factory = || b"fan".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_max_duration(Duration::from_secs(20));
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        assert_eq!(report.shards, 3);
        assert_eq!(report.per_shard.len(), 3);
        // Every shard serves every request under broadcast.
        assert!(report.cluster.requests > 250, "{}", report.cluster.requests);
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        // The end-to-end tail waits for the slowest shard, so it can never be below a
        // single shard's tail.
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
        assert!(report.p99_amplification() >= 1.0);
    }

    #[test]
    fn integrated_cluster_hash_routing_partitions_requests() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| Arc::new(EchoApp::default()) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(4, FanoutPolicy::HashKey { offset: 0, len: 8 });
        let mut n = 0u64;
        let mut factory = move || {
            n += 1;
            n.to_le_bytes().to_vec()
        };
        let config = BenchmarkConfig::new(2_000.0, 400).with_warmup(0);
        let report = run_cluster_integrated(&apps, &mut factory, &config, &cluster).unwrap();
        // Routed mode: each request is served exactly once, split across the shards.
        let shard_total: u64 = report.per_shard.iter().map(|r| r.requests).sum();
        assert_eq!(shard_total, report.cluster.requests);
        let busiest = report.per_shard.iter().map(|r| r.requests).max().unwrap();
        assert!(
            busiest < report.cluster.requests,
            "hashing must not send every request to one shard"
        );
    }

    #[test]
    fn cluster_rejects_wrong_instance_count() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> =
            vec![Arc::new(EchoApp::default()) as Arc<dyn ServerApp>];
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let mut factory = || vec![0u8];
        let config = BenchmarkConfig::new(100.0, 10);
        assert!(run_cluster_integrated(&apps, &mut factory, &config, &cluster).is_err());
    }

    #[test]
    fn closed_loop_mode_completes() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 100)
            .with_warmup(10)
            .with_load(LoadMode::Closed { think_ns: 10_000 });
        let report = run_integrated(&app, &mut factory, &config);
        assert!(report.requests > 80);
        assert!(report.offered_qps.is_none());
    }
}
