//! Loopback and networked harness configurations.
//!
//! In the loopback configuration the client and the application run on the same machine
//! and exchange requests over TCP through the loopback interface, which exercises the
//! kernel network stack but no physical network (paper Fig. 1, lower right).  The
//! networked configuration adds the propagation delay of NICs, links and switches; since
//! this reproduction has a single machine, that extra delay is added analytically as a
//! constant per direction (see DESIGN.md) while the socket and network-stack work is
//! still performed for real.
//!
//! The client side uses several connections, each with its own sender and receiver
//! thread, mirroring the paper's use of multiple client processes to avoid client-side
//! queuing.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::{ClusterCollectorHandle, CollectorHandle};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::hedge::{HedgeEngine, HedgeMsg};
use crate::integrated::{build_cluster_report, build_report, check_instances, interfered};
use crate::protocol;
use crate::queue::{Completion, RequestQueue};
use crate::report::{ClusterReport, RunReport};
use crate::time::RunClock;
use crate::traffic::TrafficShaper;
use crate::worker::WorkerPool;
use crossbeam::channel::unbounded;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Runs one measurement over TCP (loopback or networked) and returns its report.
///
/// `one_way_delay_ns` is the analytic propagation delay added per direction;
/// pass 0 for the loopback configuration.
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if the server socket cannot be created or a client
/// connection fails; [`HarnessError::Config`] if called with a closed-loop load mode
/// (the TCP runners only support the open-loop methodology).
pub fn run_tcp(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    connections: usize,
    one_way_delay_ns: u64,
    configuration_name: &str,
) -> Result<RunReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "TCP configurations require an open-loop load mode".into(),
        ));
    }
    let connections = connections.max(1);
    app.prepare();

    let clock = RunClock::new();
    let queue = RequestQueue::new();
    let collector =
        CollectorHandle::spawn_with_tags(config.warmup_requests as u64, config.tags.clone());
    let pool = WorkerPool::spawn(
        interfered(app, config, 0, clock),
        queue.receiver(),
        clock,
        config.worker_threads,
    );

    // --- server side -------------------------------------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0").map_err(HarnessError::Io)?;
    let addr = listener.local_addr().map_err(HarnessError::Io)?;
    let accept_handle = spawn_server(listener, connections, &queue, clock);

    // --- build the global open-loop schedule and split it across connections -----------
    let mut rng = tailbench_workloads::rng::seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .expect("checked open-loop above");
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let per_connection = shaper.split_round_robin(connections);

    // --- client side ---------------------------------------------------------------------
    let mut client_handles = Vec::new();
    let max_ns = config.max_duration.as_nanos() as u64;
    for requests in per_connection {
        let stream = TcpStream::connect(addr).map_err(HarnessError::Io)?;
        stream.set_nodelay(true).map_err(HarnessError::Io)?;
        let record_tx = collector.sender();
        let reader_stream = stream.try_clone().map_err(HarnessError::Io)?;

        // Receiver thread: decodes responses and forwards complete records.
        let receiver: JoinHandle<()> = std::thread::Builder::new()
            .name("tb-client-recv".into())
            .spawn(move || {
                let mut reader = BufReader::new(reader_stream);
                while let Ok(Some(frame)) = protocol::read_response(&mut reader) {
                    let record = record_from_frame(&frame, clock.now_ns(), one_way_delay_ns);
                    let _ = record_tx.send(record);
                }
            })
            .expect("failed to spawn client receiver");

        // Sender thread: paces its share of the schedule.
        let sender: JoinHandle<()> = std::thread::Builder::new()
            .name("tb-client-send".into())
            .spawn(move || {
                let mut writer = BufWriter::new(&stream);
                for mut request in requests {
                    let now = clock.sleep_until_ns(request.issued_ns);
                    if now > max_ns {
                        break;
                    }
                    request.issued_ns = now;
                    if protocol::write_request(&mut writer, &request).is_err() {
                        break;
                    }
                }
                drop(writer);
                // Signal end-of-requests so the server-side reader can wind down.
                let _ = stream.shutdown(Shutdown::Write);
            })
            .expect("failed to spawn client sender");

        client_handles.push((sender, receiver));
    }

    // Wait for all clients to finish sending and receiving.
    for (sender, receiver) in client_handles {
        let _ = sender.join();
        let _ = receiver.join();
    }
    // All server readers have observed EOF by now (the receivers only exit once the
    // server writers shut down their side); dropping our queue handle lets workers exit.
    queue.close();
    let _ = pool.join();
    let _ = accept_handle.join();
    let stats = collector.join();

    Ok(build_report(app.name(), configuration_name, config, &stats))
}

/// Builds the client-side [`RequestRecord`](crate::request::RequestRecord) for a decoded
/// response frame.  The analytic propagation delay is added once per direction: the
/// request and the response each cross the "wire".
fn record_from_frame(
    frame: &protocol::ResponseFrame,
    now_ns: u64,
    one_way_delay_ns: u64,
) -> crate::request::RequestRecord {
    crate::request::RequestRecord {
        id: frame.id,
        issued_ns: frame.issued_ns,
        enqueued_ns: frame.enqueued_ns,
        started_ns: frame.started_ns,
        completed_ns: frame.completed_ns,
        client_received_ns: now_ns + 2 * one_way_delay_ns,
    }
}

/// Runs one cluster measurement over TCP (loopback or networked).
///
/// Each of the `cluster.instances()` server instances gets its own listener, request
/// queue and worker pool; the client opens one connection per instance.  The calling
/// thread is the client-side router: it paces the global open-loop schedule and hands
/// each request's leg(s) to per-connection sender threads chosen by `cluster.fanout` —
/// the socket writes happen off the router thread, so a wide fan-out does not serialize
/// write syscalls into later shards' measured latency.  Per-connection receiver threads
/// decode responses and feed the cross-shard collector, which merges broadcast legs
/// last-response-wins.  `one_way_delay_ns` is the analytic propagation delay added per
/// direction (0 for loopback).
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if sockets cannot be set up, and
/// [`HarnessError::Config`] for closed-loop load or a wrong `apps` count.
pub fn run_cluster_tcp(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    one_way_delay_ns: u64,
    configuration_name: &str,
) -> Result<ClusterReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "TCP configurations require an open-loop load mode".into(),
        ));
    }
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let clock = RunClock::new();
    let width = cluster.fanout_width();
    let hedge = cluster.active_hedge();
    let collector = ClusterCollectorHandle::spawn_with_tags(
        cluster.shards,
        config.warmup_requests as u64,
        config.tags.clone(),
    );

    let mut queues = Vec::with_capacity(apps.len());
    let mut pools = Vec::with_capacity(apps.len());
    let mut server_handles = Vec::with_capacity(apps.len());
    let mut sender_handles = Vec::with_capacity(apps.len());
    let mut reader_streams = Vec::with_capacity(apps.len());
    let mut leg_txs: Vec<crossbeam::channel::Sender<crate::request::Request>> =
        Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let queue = RequestQueue::new();
        pools.push(WorkerPool::spawn(
            interfered(app, config, i, clock),
            queue.receiver(),
            clock,
            config.worker_threads,
        ));
        let listener = TcpListener::bind("127.0.0.1:0").map_err(HarnessError::Io)?;
        let addr = listener.local_addr().map_err(HarnessError::Io)?;
        server_handles.push(spawn_server(listener, 1, &queue, clock));
        queues.push(queue);

        let stream = TcpStream::connect(addr).map_err(HarnessError::Io)?;
        stream.set_nodelay(true).map_err(HarnessError::Io)?;
        reader_streams.push(stream.try_clone().map_err(HarnessError::Io)?);
        // Sender thread: serializes this connection's legs off the router thread.
        let (leg_tx, leg_rx) = unbounded::<crate::request::Request>();
        leg_txs.push(leg_tx);
        sender_handles.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-send-{i}"))
                .spawn(move || {
                    let mut writer = BufWriter::new(&stream);
                    while let Ok(request) = leg_rx.recv() {
                        if protocol::write_request(&mut writer, &request).is_err() {
                            break;
                        }
                    }
                    drop(writer);
                    // End-of-requests: the server reader unwinds, then its writer, then
                    // our receiver.
                    let _ = stream.shutdown(Shutdown::Write);
                })
                .expect("failed to spawn cluster sender"),
        );
    }

    // With hedging active, receivers detour through the hedge engine, which forwards
    // only each leg's first response and reissues stragglers onto the alternate
    // replica's connection.
    let engine = hedge.map(|policy| {
        let hedge_leg_txs = leg_txs.clone();
        let reissue = Box::new(move |instance: usize, request: crate::request::Request| {
            hedge_leg_txs[instance].send(request).is_ok()
        });
        HedgeEngine::spawn(
            policy,
            cluster.clone(),
            width,
            clock,
            collector.sender(),
            reissue,
        )
    });
    let engine_tx = engine.as_ref().map(HedgeEngine::sender);

    let mut receiver_handles = Vec::with_capacity(apps.len());
    for (i, reader_stream) in reader_streams.into_iter().enumerate() {
        let record_tx = collector.sender();
        let hedge_tx = engine_tx.clone();
        let shard = i / cluster.replication;
        receiver_handles.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-recv-{i}"))
                .spawn(move || {
                    let mut reader = BufReader::new(reader_stream);
                    while let Ok(Some(frame)) = protocol::read_response(&mut reader) {
                        let record = record_from_frame(&frame, clock.now_ns(), one_way_delay_ns);
                        match &hedge_tx {
                            Some(tx) => {
                                let _ = tx.send(HedgeMsg::Completed {
                                    shard,
                                    instance: i,
                                    record,
                                });
                            }
                            None => {
                                let _ = record_tx.send((shard, width, record));
                            }
                        }
                    }
                })
                .expect("failed to spawn cluster receiver"),
        );
    }

    // --- client-side router: pace the global schedule onto the shard connections ------
    let mut rng = tailbench_workloads::rng::seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .expect("checked open-loop above");
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let max_ns = config.max_duration.as_nanos() as u64;
    'pacing: for mut request in shaper.into_requests() {
        let now = clock.sleep_until_ns(request.issued_ns);
        if now > max_ns {
            break;
        }
        request.issued_ns = now;
        let legs = match cluster.fanout.route(&request.payload, cluster.shards) {
            Route::Shard(shard) => shard..shard + 1,
            Route::AllShards => 0..cluster.shards,
        };
        for shard in legs {
            let i = cluster.instance(shard, request.id.0);
            if let Some(tx) = &engine_tx {
                // Announce the leg before the server can possibly answer it.
                let _ = tx.send(HedgeMsg::Dispatched {
                    request: request.clone(),
                    shard,
                });
            }
            if leg_txs[i].send(request.clone()).is_err() {
                break 'pacing;
            }
        }
    }
    if let Some(tx) = &engine_tx {
        let _ = tx.send(HedgeMsg::NoMoreDispatches);
    }
    drop(engine_tx);
    drop(leg_txs);

    for sender in sender_handles {
        let _ = sender.join();
    }
    for receiver in receiver_handles {
        let _ = receiver.join();
    }
    for queue in queues {
        queue.close();
    }
    for pool in pools {
        let _ = pool.join();
    }
    for server in server_handles {
        let _ = server.join();
    }
    let hedge_stats = engine.map(HedgeEngine::join);
    let stats = collector.join();
    Ok(build_cluster_report(
        apps[0].name(),
        configuration_name,
        config,
        cluster,
        &stats,
        hedge_stats,
    ))
}

/// Accepts `connections` connections and spawns a reader and a writer thread per
/// connection.  Returns a handle that joins all per-connection threads.
fn spawn_server(
    listener: TcpListener,
    connections: usize,
    queue: &RequestQueue,
    clock: RunClock,
) -> JoinHandle<()> {
    let queue_tx = queue.sender();
    std::thread::Builder::new()
        .name("tb-server-accept".into())
        .spawn(move || {
            let mut conn_handles = Vec::new();
            for _ in 0..connections {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                let _ = stream.set_nodelay(true);
                let (resp_tx, resp_rx) = unbounded();
                let reader_stream = stream.try_clone().expect("clone server stream");
                let queue_tx = queue_tx.clone();

                let reader = std::thread::Builder::new()
                    .name("tb-server-recv".into())
                    .spawn(move || {
                        let mut reader = BufReader::new(reader_stream);
                        while let Ok(Some(request)) = protocol::read_request(&mut reader) {
                            let enqueued_ns = clock.now_ns();
                            let item = crate::queue::QueuedRequest {
                                request,
                                enqueued_ns,
                                completion: Completion::Responder(resp_tx.clone()),
                            };
                            if queue_tx.send(item).is_err() {
                                break;
                            }
                        }
                        // Dropping resp_tx here lets the writer exit once in-flight
                        // requests drain.
                    })
                    .expect("failed to spawn server reader");

                let writer = std::thread::Builder::new()
                    .name("tb-server-send".into())
                    .spawn(move || {
                        let mut writer = BufWriter::new(&stream);
                        while let Ok(completion) = resp_rx.recv() {
                            if protocol::write_response(&mut writer, &completion).is_err() {
                                break;
                            }
                        }
                        drop(writer);
                        let _ = stream.shutdown(Shutdown::Write);
                    })
                    .expect("failed to spawn server writer");

                conn_handles.push((reader, writer));
            }
            drop(queue_tx);
            for (reader, writer) in conn_handles {
                let _ = reader.join();
                let _ = writer.join();
            }
        })
        .expect("failed to spawn accept thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::config::BenchmarkConfig;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(10))
    }

    #[test]
    fn loopback_run_completes_and_measures() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_max_duration(Duration::from_secs(30));
        let report = run_tcp(&app, &mut factory, &config, 4, 0, "loopback").unwrap();
        assert_eq!(report.configuration, "loopback");
        assert!(report.requests > 250, "measured {}", report.requests);
        assert!(report.sojourn.mean_ns > 0.0);
        // Loopback adds real socket overhead on top of service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns);
    }

    #[test]
    fn networked_delay_increases_sojourn() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let base = BenchmarkConfig::new(800.0, 200)
            .with_warmup(20)
            .with_seed(9);
        let loopback = run_tcp(&app, &mut factory, &base, 4, 0, "loopback").unwrap();
        let networked = run_tcp(&app, &mut factory, &base, 4, 50_000, "networked").unwrap();
        // 100 us of added round-trip must be visible in the median sojourn.
        assert!(
            networked.sojourn.p50_ns >= loopback.sojourn.p50_ns + 50_000,
            "networked p50 {} vs loopback p50 {}",
            networked.sojourn.p50_ns,
            loopback.sojourn.p50_ns
        );
    }

    #[test]
    fn loopback_cluster_broadcast_merges_on_last_response() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..2)
            .map(|_| Arc::new(EchoApp::with_service_us(10)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let mut factory = || b"net".to_vec();
        let config = BenchmarkConfig::new(800.0, 250)
            .with_warmup(25)
            .with_max_duration(Duration::from_secs(30));
        let report =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 0, "loopback").unwrap();
        assert_eq!(report.shards, 2);
        assert!(report.cluster.requests > 200, "{}", report.cluster.requests);
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        assert!(report.cluster.sojourn.p50_ns > 0);
        // Waiting for both shards can never beat the slower shard's tail.
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
    }

    #[test]
    fn networked_cluster_delay_shifts_the_distribution() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..2)
            .map(|_| Arc::new(EchoApp::with_service_us(10)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let config = BenchmarkConfig::new(500.0, 150)
            .with_warmup(15)
            .with_seed(2);
        let mut factory = || b"net".to_vec();
        let loopback =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 0, "loopback").unwrap();
        let mut factory = || b"net".to_vec();
        let networked =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 50_000, "networked").unwrap();
        assert!(
            networked.cluster.sojourn.p50_ns >= loopback.cluster.sojourn.p50_ns + 50_000,
            "networked cluster p50 {} vs loopback {}",
            networked.cluster.sojourn.p50_ns,
            loopback.cluster.sojourn.p50_ns
        );
    }

    #[test]
    fn closed_loop_mode_is_rejected() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(100.0, 10)
            .with_load(crate::traffic::LoadMode::Closed { think_ns: 0 });
        let err = run_tcp(&app, &mut factory, &config, 2, 0, "loopback").unwrap_err();
        assert!(matches!(err, HarnessError::Config(_)));
    }
}
