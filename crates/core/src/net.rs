//! Loopback and networked harness configurations.
//!
//! In the loopback configuration the client and the application run on the same machine
//! and exchange requests over TCP through the loopback interface, which exercises the
//! kernel network stack but no physical network (paper Fig. 1, lower right).  The
//! networked configuration adds the propagation delay of NICs, links and switches; since
//! this reproduction has a single machine, that extra delay is added analytically as a
//! constant per direction (see DESIGN.md) while the socket and network-stack work is
//! still performed for real.
//!
//! The client side uses several connections, each with its own sender and receiver
//! thread, mirroring the paper's use of multiple client processes to avoid client-side
//! queuing.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::CollectorHandle;
use crate::config::BenchmarkConfig;
use crate::error::HarnessError;
use crate::integrated::build_report;
use crate::protocol;
use crate::queue::{Completion, RequestQueue};
use crate::report::RunReport;
use crate::request::Request;
use crate::time::RunClock;
use crate::traffic::{LoadMode, TrafficShaper};
use crate::worker::WorkerPool;
use crossbeam::channel::unbounded;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Runs one measurement over TCP (loopback or networked) and returns its report.
///
/// `one_way_delay_ns` is the analytic propagation delay added per direction;
/// pass 0 for the loopback configuration.
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if the server socket cannot be created or a client
/// connection fails; [`HarnessError::Config`] if called with a closed-loop load mode
/// (the TCP runners only support the open-loop methodology).
pub fn run_tcp(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    connections: usize,
    one_way_delay_ns: u64,
    configuration_name: &str,
) -> Result<RunReport, HarnessError> {
    let LoadMode::Open(process) = &config.load else {
        return Err(HarnessError::Config(
            "TCP configurations require an open-loop load mode".into(),
        ));
    };
    let connections = connections.max(1);
    app.prepare();

    let clock = RunClock::new();
    let queue = RequestQueue::new();
    let collector = CollectorHandle::spawn(config.warmup_requests as u64);
    let pool = WorkerPool::spawn(
        Arc::clone(app),
        queue.receiver(),
        clock,
        config.worker_threads,
    );

    // --- server side -------------------------------------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0").map_err(HarnessError::Io)?;
    let addr = listener.local_addr().map_err(HarnessError::Io)?;
    let accept_handle = spawn_server(listener, connections, &queue, clock);

    // --- build the global open-loop schedule and split it across connections -----------
    let mut rng = tailbench_workloads::rng::seeded_rng(config.seed, 1);
    let shaper = TrafficShaper::build(process, &mut rng, config.total_requests(), 0, || {
        factory.next_request()
    });
    let schedule = shaper.into_requests();
    let mut per_connection: Vec<Vec<Request>> = (0..connections).map(|_| Vec::new()).collect();
    for (i, request) in schedule.into_iter().enumerate() {
        per_connection[i % connections].push(request);
    }

    // --- client side ---------------------------------------------------------------------
    let mut client_handles = Vec::new();
    let max_ns = config.max_duration.as_nanos() as u64;
    for requests in per_connection {
        let stream = TcpStream::connect(addr).map_err(HarnessError::Io)?;
        stream.set_nodelay(true).map_err(HarnessError::Io)?;
        let record_tx = collector.sender();
        let reader_stream = stream.try_clone().map_err(HarnessError::Io)?;

        // Receiver thread: decodes responses and forwards complete records.
        let receiver: JoinHandle<()> = std::thread::Builder::new()
            .name("tb-client-recv".into())
            .spawn(move || {
                let mut reader = BufReader::new(reader_stream);
                while let Ok(Some(frame)) = protocol::read_response(&mut reader) {
                    // The analytic propagation delay is added once per direction: the
                    // request and the response each cross the "wire".
                    let client_received_ns = clock.now_ns() + 2 * one_way_delay_ns;
                    let record = crate::request::RequestRecord {
                        id: frame.id,
                        issued_ns: frame.issued_ns,
                        enqueued_ns: frame.enqueued_ns,
                        started_ns: frame.started_ns,
                        completed_ns: frame.completed_ns,
                        client_received_ns,
                    };
                    let _ = record_tx.send(record);
                }
            })
            .expect("failed to spawn client receiver");

        // Sender thread: paces its share of the schedule.
        let sender: JoinHandle<()> = std::thread::Builder::new()
            .name("tb-client-send".into())
            .spawn(move || {
                let mut writer = BufWriter::new(&stream);
                for mut request in requests {
                    let now = clock.sleep_until_ns(request.issued_ns);
                    if now > max_ns {
                        break;
                    }
                    request.issued_ns = now;
                    if protocol::write_request(&mut writer, &request).is_err() {
                        break;
                    }
                }
                drop(writer);
                // Signal end-of-requests so the server-side reader can wind down.
                let _ = stream.shutdown(Shutdown::Write);
            })
            .expect("failed to spawn client sender");

        client_handles.push((sender, receiver));
    }

    // Wait for all clients to finish sending and receiving.
    for (sender, receiver) in client_handles {
        let _ = sender.join();
        let _ = receiver.join();
    }
    // All server readers have observed EOF by now (the receivers only exit once the
    // server writers shut down their side); dropping our queue handle lets workers exit.
    queue.close();
    let _ = pool.join();
    let _ = accept_handle.join();
    let stats = collector.join();

    Ok(build_report(app.name(), configuration_name, config, &stats))
}

/// Accepts `connections` connections and spawns a reader and a writer thread per
/// connection.  Returns a handle that joins all per-connection threads.
fn spawn_server(
    listener: TcpListener,
    connections: usize,
    queue: &RequestQueue,
    clock: RunClock,
) -> JoinHandle<()> {
    let queue_tx = queue.sender();
    std::thread::Builder::new()
        .name("tb-server-accept".into())
        .spawn(move || {
            let mut conn_handles = Vec::new();
            for _ in 0..connections {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                let _ = stream.set_nodelay(true);
                let (resp_tx, resp_rx) = unbounded();
                let reader_stream = stream.try_clone().expect("clone server stream");
                let queue_tx = queue_tx.clone();

                let reader = std::thread::Builder::new()
                    .name("tb-server-recv".into())
                    .spawn(move || {
                        let mut reader = BufReader::new(reader_stream);
                        while let Ok(Some(request)) = protocol::read_request(&mut reader) {
                            let enqueued_ns = clock.now_ns();
                            let item = crate::queue::QueuedRequest {
                                request,
                                enqueued_ns,
                                completion: Completion::Responder(resp_tx.clone()),
                            };
                            if queue_tx.send(item).is_err() {
                                break;
                            }
                        }
                        // Dropping resp_tx here lets the writer exit once in-flight
                        // requests drain.
                    })
                    .expect("failed to spawn server reader");

                let writer = std::thread::Builder::new()
                    .name("tb-server-send".into())
                    .spawn(move || {
                        let mut writer = BufWriter::new(&stream);
                        while let Ok(completion) = resp_rx.recv() {
                            if protocol::write_response(&mut writer, &completion).is_err() {
                                break;
                            }
                        }
                        drop(writer);
                        let _ = stream.shutdown(Shutdown::Write);
                    })
                    .expect("failed to spawn server writer");

                conn_handles.push((reader, writer));
            }
            drop(queue_tx);
            for (reader, writer) in conn_handles {
                let _ = reader.join();
                let _ = writer.join();
            }
        })
        .expect("failed to spawn accept thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::config::BenchmarkConfig;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(10))
    }

    #[test]
    fn loopback_run_completes_and_measures() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_max_duration(Duration::from_secs(30));
        let report = run_tcp(&app, &mut factory, &config, 4, 0, "loopback").unwrap();
        assert_eq!(report.configuration, "loopback");
        assert!(report.requests > 250, "measured {}", report.requests);
        assert!(report.sojourn.mean_ns > 0.0);
        // Loopback adds real socket overhead on top of service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns);
    }

    #[test]
    fn networked_delay_increases_sojourn() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let base = BenchmarkConfig::new(800.0, 200)
            .with_warmup(20)
            .with_seed(9);
        let loopback = run_tcp(&app, &mut factory, &base, 4, 0, "loopback").unwrap();
        let networked = run_tcp(&app, &mut factory, &base, 4, 50_000, "networked").unwrap();
        // 100 us of added round-trip must be visible in the median sojourn.
        assert!(
            networked.sojourn.p50_ns >= loopback.sojourn.p50_ns + 50_000,
            "networked p50 {} vs loopback p50 {}",
            networked.sojourn.p50_ns,
            loopback.sojourn.p50_ns
        );
    }

    #[test]
    fn closed_loop_mode_is_rejected() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(100.0, 10)
            .with_load(crate::traffic::LoadMode::Closed { think_ns: 0 });
        let err = run_tcp(&app, &mut factory, &config, 2, 0, "loopback").unwrap_err();
        assert!(matches!(err, HarnessError::Config(_)));
    }
}
