//! Loopback and networked harness configurations.
//!
//! In the loopback configuration the client and the application run on the same machine
//! and exchange requests over TCP through the loopback interface, which exercises the
//! kernel network stack but no physical network (paper Fig. 1, lower right).  The
//! networked configuration adds the propagation delay of NICs, links and switches; since
//! this reproduction has a single machine, that extra delay is added analytically as a
//! constant per direction (see DESIGN.md) while the socket and network-stack work is
//! still performed for real.
//!
//! The client side uses several connections, each with its own sender and receiver
//! thread, mirroring the paper's use of multiple client processes to avoid client-side
//! queuing.  Each receiver thread owns its own collector shard (merged at join — no
//! collector thread or channel), each sender thread records its own pacing error, and
//! server-side payload buffers are pooled: readers take, workers and writers recycle.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::{ClusterCollector, StatsCollector};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::hedge::{HedgeEngine, HedgeMsg};
use crate::integrated::{
    build_cluster_report, build_report, check_instances, interfered, shard_proto,
};
use crate::pool::BufferPool;
use crate::protocol;
use crate::queue::{Completion, PushOutcome, RequestQueue};
use crate::report::{ClusterReport, QueueSummary, RunReport};
use crate::time::{PacingRecorder, RunClock};
use crate::traffic::TrafficShaper;
use crate::worker::WorkerPool;
use crossbeam::channel::unbounded;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Runs one measurement over TCP (loopback or networked) and returns its report.
///
/// `one_way_delay_ns` is the analytic propagation delay added per direction;
/// pass 0 for the loopback configuration.
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if the server socket cannot be created or a client
/// connection fails; [`HarnessError::Config`] if called with a closed-loop load mode
/// (the TCP runners only support the open-loop methodology).
pub fn run_tcp(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    connections: usize,
    one_way_delay_ns: u64,
    configuration_name: &str,
) -> Result<RunReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "TCP configurations require an open-loop load mode".into(),
        ));
    }
    let connections = connections.max(1);
    app.prepare();

    let clock = RunClock::new();
    let queue = RequestQueue::with_policy(config.admission);
    let observer = queue.observer();
    let buffers = Arc::new(BufferPool::default());
    let pool = WorkerPool::spawn(
        interfered(app, config, 0, clock),
        queue.receiver(),
        clock,
        config.worker_threads,
        shard_proto(config),
        Some(Arc::clone(&buffers)),
    );

    // --- server side -------------------------------------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0").map_err(HarnessError::Io)?;
    let addr = listener.local_addr().map_err(HarnessError::Io)?;
    let accept_handle = spawn_server(listener, connections, &queue, clock, &buffers);

    // --- build the global open-loop schedule and split it across connections -----------
    let mut rng = tailbench_workloads::rng::seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .expect("checked open-loop above");
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let per_connection = shaper.split_round_robin(connections);

    // --- client side ---------------------------------------------------------------------
    let mut client_handles = Vec::new();
    let max_ns = config.max_duration.as_nanos() as u64;
    for requests in per_connection {
        let stream = TcpStream::connect(addr).map_err(HarnessError::Io)?;
        stream.set_nodelay(true).map_err(HarnessError::Io)?;
        let reader_stream = stream.try_clone().map_err(HarnessError::Io)?;

        // Receiver thread: decodes responses into its own collector shard, reusing one
        // scratch buffer for the payload bytes.
        let mut shard = shard_proto(config);
        let receiver: JoinHandle<StatsCollector> = std::thread::Builder::new()
            .name("tb-client-recv".into())
            .spawn(move || {
                let mut reader = BufReader::new(reader_stream);
                let mut scratch = Vec::new();
                while let Ok(Some(header)) =
                    protocol::read_response_header(&mut reader, &mut scratch)
                {
                    let record = record_from_header(&header, clock.now_ns(), one_way_delay_ns);
                    shard.record(&record);
                }
                shard
            })
            .expect("failed to spawn client receiver");

        // Sender thread: paces its share of the schedule and records its issue error.
        let sender: JoinHandle<PacingRecorder> = std::thread::Builder::new()
            .name("tb-client-send".into())
            .spawn(move || {
                let mut writer = BufWriter::new(&stream);
                let mut pacing = PacingRecorder::new();
                for mut request in requests {
                    let scheduled_ns = request.issued_ns;
                    let now = clock.sleep_until_ns(scheduled_ns);
                    if now > max_ns {
                        break;
                    }
                    pacing.record(scheduled_ns, now);
                    request.issued_ns = now;
                    if protocol::write_request(&mut writer, &request).is_err() {
                        break;
                    }
                }
                drop(writer);
                // Signal end-of-requests so the server-side reader can wind down.
                let _ = stream.shutdown(Shutdown::Write);
                pacing
            })
            .expect("failed to spawn client sender");

        client_handles.push((sender, receiver));
    }

    // Wait for all clients to finish sending and receiving, merging their shards.
    let mut stats = shard_proto(config);
    let mut pacing = PacingRecorder::new();
    for (sender, receiver) in client_handles {
        if let Ok(sent) = sender.join() {
            pacing.merge(&sent);
        }
        if let Ok(shard) = receiver.join() {
            stats.merge(&shard);
        }
    }
    // All server readers have observed EOF by now (the receivers only exit once the
    // server writers shut down their side); dropping our queue handle lets workers exit.
    queue.close();
    let _ = pool.join();
    let _ = accept_handle.join();

    let mut report = build_report(app.name(), configuration_name, config, &stats);
    report.queue_depth = observer.summary();
    report.pacing = pacing.stats();
    Ok(report)
}

/// Builds the client-side [`RequestRecord`](crate::request::RequestRecord) for a decoded
/// response header.  The analytic propagation delay is added once per direction: the
/// request and the response each cross the "wire".
fn record_from_header(
    header: &protocol::ResponseHeader,
    now_ns: u64,
    one_way_delay_ns: u64,
) -> crate::request::RequestRecord {
    crate::request::RequestRecord {
        id: header.id,
        issued_ns: header.issued_ns,
        enqueued_ns: header.enqueued_ns,
        started_ns: header.started_ns,
        completed_ns: header.completed_ns,
        client_received_ns: now_ns + 2 * one_way_delay_ns,
    }
}

/// Runs one cluster measurement over TCP (loopback or networked).
///
/// Each of the `cluster.instances()` server instances gets its own listener, request
/// queue and worker pool; the client opens one connection per instance.  The calling
/// thread is the client-side router: it paces the global open-loop schedule and hands
/// each request's leg(s) to per-connection sender threads chosen by `cluster.fanout` —
/// the socket writes happen off the router thread, so a wide fan-out does not serialize
/// write syscalls into later shards' measured latency.  Per-connection receiver threads
/// decode responses into partial cross-shard collectors merged at run end (the hedge
/// engine owns the collector when hedging is active).  `one_way_delay_ns` is the
/// analytic propagation delay added per direction (0 for loopback).
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if sockets cannot be set up, and
/// [`HarnessError::Config`] for closed-loop load or a wrong `apps` count.
pub fn run_cluster_tcp(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    one_way_delay_ns: u64,
    configuration_name: &str,
) -> Result<ClusterReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "TCP configurations require an open-loop load mode".into(),
        ));
    }
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let clock = RunClock::new();
    let width = cluster.fanout_width();
    let hedge = cluster.active_hedge();
    let warmup = config.warmup_requests as u64;
    let new_cluster_collector =
        || ClusterCollector::new(cluster.shards, warmup).with_tags(config.tags.clone());

    let mut queues = Vec::with_capacity(apps.len());
    let mut observers = Vec::with_capacity(apps.len());
    let mut pools = Vec::with_capacity(apps.len());
    let mut server_handles = Vec::with_capacity(apps.len());
    let mut sender_handles = Vec::with_capacity(apps.len());
    let mut reader_streams = Vec::with_capacity(apps.len());
    let mut leg_txs: Vec<crossbeam::channel::Sender<crate::request::Request>> =
        Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let queue = RequestQueue::with_policy(config.admission);
        observers.push(queue.observer());
        let buffers = Arc::new(BufferPool::default());
        pools.push(WorkerPool::spawn(
            interfered(app, config, i, clock),
            queue.receiver(),
            clock,
            config.worker_threads,
            StatsCollector::new(warmup),
            Some(Arc::clone(&buffers)),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").map_err(HarnessError::Io)?;
        let addr = listener.local_addr().map_err(HarnessError::Io)?;
        server_handles.push(spawn_server(listener, 1, &queue, clock, &buffers));
        queues.push(queue);

        let stream = TcpStream::connect(addr).map_err(HarnessError::Io)?;
        stream.set_nodelay(true).map_err(HarnessError::Io)?;
        reader_streams.push(stream.try_clone().map_err(HarnessError::Io)?);
        // Sender thread: serializes this connection's legs off the router thread.
        let (leg_tx, leg_rx) = unbounded::<crate::request::Request>();
        leg_txs.push(leg_tx);
        sender_handles.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-send-{i}"))
                .spawn(move || {
                    let mut writer = BufWriter::new(&stream);
                    while let Ok(request) = leg_rx.recv() {
                        if protocol::write_request(&mut writer, &request).is_err() {
                            break;
                        }
                    }
                    drop(writer);
                    // End-of-requests: the server reader unwinds, then its writer, then
                    // our receiver.
                    let _ = stream.shutdown(Shutdown::Write);
                })
                .expect("failed to spawn cluster sender"),
        );
    }

    // With hedging active, receivers detour through the hedge engine, which owns the
    // collector, forwards only each leg's first response and reissues stragglers onto
    // the alternate replica's connection.
    let engine = hedge.map(|policy| {
        let hedge_leg_txs = leg_txs.clone();
        let reissue = Box::new(move |instance: usize, request: crate::request::Request| {
            hedge_leg_txs[instance].send(request).is_ok()
        });
        HedgeEngine::spawn(
            policy,
            cluster.clone(),
            width,
            clock,
            new_cluster_collector(),
            reissue,
        )
    });
    let engine_tx = engine.as_ref().map(HedgeEngine::sender);

    let mut receiver_handles = Vec::with_capacity(apps.len());
    for (i, reader_stream) in reader_streams.into_iter().enumerate() {
        let hedge_tx = engine_tx.clone();
        let shard = i / cluster.replication;
        let mut partial = new_cluster_collector();
        receiver_handles.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-recv-{i}"))
                .spawn(move || {
                    let mut reader = BufReader::new(reader_stream);
                    let mut scratch = Vec::new();
                    while let Ok(Some(header)) =
                        protocol::read_response_header(&mut reader, &mut scratch)
                    {
                        let record = record_from_header(&header, clock.now_ns(), one_way_delay_ns);
                        match &hedge_tx {
                            Some(tx) => {
                                let _ = tx.send(HedgeMsg::Completed {
                                    shard,
                                    instance: i,
                                    record,
                                });
                            }
                            None => {
                                let _ = partial.record_leg(shard, record, width);
                            }
                        }
                    }
                    partial
                })
                .expect("failed to spawn cluster receiver"),
        );
    }

    // --- client-side router: pace the global schedule onto the shard connections ------
    let mut rng = tailbench_workloads::rng::seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .expect("checked open-loop above");
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let max_ns = config.max_duration.as_nanos() as u64;
    let mut pacing = PacingRecorder::new();
    'pacing: for mut request in shaper.into_requests() {
        let scheduled_ns = request.issued_ns;
        let now = clock.sleep_until_ns(scheduled_ns);
        if now > max_ns {
            break;
        }
        pacing.record(scheduled_ns, now);
        request.issued_ns = now;
        let legs = match cluster.fanout.route(&request.payload, cluster.shards) {
            Route::Shard(shard) => shard..shard + 1,
            Route::AllShards => 0..cluster.shards,
        };
        for shard in legs {
            let i = cluster.instance(shard, request.id.0);
            if let Some(tx) = &engine_tx {
                // Announce the leg before the server can possibly answer it.
                let _ = tx.send(HedgeMsg::Dispatched {
                    request: request.clone(),
                    shard,
                });
            }
            if leg_txs[i].send(request.clone()).is_err() {
                break 'pacing;
            }
        }
    }
    if let Some(tx) = &engine_tx {
        let _ = tx.send(HedgeMsg::NoMoreDispatches);
    }
    drop(engine_tx);
    drop(leg_txs);

    for sender in sender_handles {
        let _ = sender.join();
    }
    let mut partials = Vec::with_capacity(receiver_handles.len());
    for receiver in receiver_handles {
        partials.push(receiver.join().expect("cluster receiver thread panicked"));
    }
    for queue in queues {
        queue.close();
    }
    for pool in pools {
        let _ = pool.join();
    }
    for server in server_handles {
        let _ = server.join();
    }
    let (stats, hedge_stats) = match engine {
        Some(engine) => {
            let (hedge_stats, collector) = engine.join();
            (collector, Some(hedge_stats))
        }
        None => {
            let mut merged = new_cluster_collector();
            for partial in partials {
                merged.merge(partial);
            }
            (merged, None)
        }
    };
    let queue_summaries: Vec<QueueSummary> = observers.iter().map(|o| o.summary()).collect();
    let mut report = build_cluster_report(
        apps[0].name(),
        configuration_name,
        config,
        cluster,
        &stats,
        hedge_stats,
    );
    report.cluster.queue_depth = QueueSummary::aggregate(&queue_summaries);
    report.cluster.pacing = pacing.stats();
    Ok(report)
}

/// Accepts `connections` connections and spawns a reader and a writer thread per
/// connection.  Readers pull request payload buffers from `buffers` and writers recycle
/// response payloads back into it, closing the pool's request/response cycle.  Returns
/// a handle that joins all per-connection threads.
fn spawn_server(
    listener: TcpListener,
    connections: usize,
    queue: &RequestQueue,
    clock: RunClock,
    buffers: &Arc<BufferPool>,
) -> JoinHandle<()> {
    let queue_tx = queue.sender();
    let buffers = Arc::clone(buffers);
    std::thread::Builder::new()
        .name("tb-server-accept".into())
        .spawn(move || {
            let mut conn_handles = Vec::new();
            for _ in 0..connections {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                let _ = stream.set_nodelay(true);
                let (resp_tx, resp_rx) = unbounded();
                let reader_stream = stream.try_clone().expect("clone server stream");
                let queue_tx = queue_tx.clone();
                let read_pool = Arc::clone(&buffers);
                let write_pool = Arc::clone(&buffers);

                let reader = std::thread::Builder::new()
                    .name("tb-server-recv".into())
                    .spawn(move || {
                        let mut reader = BufReader::new(reader_stream);
                        while let Ok(Some(request)) =
                            protocol::read_request_pooled(&mut reader, &read_pool)
                        {
                            let enqueued_ns = clock.now_ns();
                            if queue_tx.push(
                                request,
                                enqueued_ns,
                                Completion::Responder(resp_tx.clone()),
                            ) == PushOutcome::Closed
                            {
                                break;
                            }
                        }
                        // Dropping resp_tx here lets the writer exit once in-flight
                        // requests drain.
                    })
                    .expect("failed to spawn server reader");

                let writer = std::thread::Builder::new()
                    .name("tb-server-send".into())
                    .spawn(move || {
                        let mut writer = BufWriter::new(&stream);
                        while let Ok(completion) = resp_rx.recv() {
                            if protocol::write_response(&mut writer, &completion).is_err() {
                                break;
                            }
                            write_pool.recycle(completion.response_payload);
                        }
                        drop(writer);
                        let _ = stream.shutdown(Shutdown::Write);
                    })
                    .expect("failed to spawn server writer");

                conn_handles.push((reader, writer));
            }
            drop(queue_tx);
            for (reader, writer) in conn_handles {
                let _ = reader.join();
                let _ = writer.join();
            }
        })
        .expect("failed to spawn accept thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::config::BenchmarkConfig;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(10))
    }

    #[test]
    fn loopback_run_completes_and_measures() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_max_duration(Duration::from_secs(30));
        let report = run_tcp(&app, &mut factory, &config, 4, 0, "loopback").unwrap();
        assert_eq!(report.configuration, "loopback");
        assert!(report.requests > 250, "measured {}", report.requests);
        assert!(report.sojourn.mean_ns > 0.0);
        // Loopback adds real socket overhead on top of service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns);
        // Queue and pacing accounting flow through the TCP path too.
        assert!(report.queue_depth.accepted >= report.requests);
        assert!(report.pacing.count >= report.requests);
    }

    #[test]
    fn networked_delay_increases_sojourn() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let base = BenchmarkConfig::new(800.0, 200)
            .with_warmup(20)
            .with_seed(9);
        let loopback = run_tcp(&app, &mut factory, &base, 4, 0, "loopback").unwrap();
        let networked = run_tcp(&app, &mut factory, &base, 4, 50_000, "networked").unwrap();
        // 100 us of added round-trip must be visible in the median sojourn.
        assert!(
            networked.sojourn.p50_ns >= loopback.sojourn.p50_ns + 50_000,
            "networked p50 {} vs loopback p50 {}",
            networked.sojourn.p50_ns,
            loopback.sojourn.p50_ns
        );
    }

    #[test]
    fn loopback_cluster_broadcast_merges_on_last_response() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..2)
            .map(|_| Arc::new(EchoApp::with_service_us(10)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let mut factory = || b"net".to_vec();
        let config = BenchmarkConfig::new(800.0, 250)
            .with_warmup(25)
            .with_max_duration(Duration::from_secs(30));
        let report =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 0, "loopback").unwrap();
        assert_eq!(report.shards, 2);
        assert!(report.cluster.requests > 200, "{}", report.cluster.requests);
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        assert!(report.cluster.sojourn.p50_ns > 0);
        // Waiting for both shards can never beat the slower shard's tail.
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
        // Both instances' queues feed the aggregate summary.
        assert!(report.cluster.queue_depth.accepted >= 2 * report.cluster.requests);
    }

    #[test]
    fn networked_cluster_delay_shifts_the_distribution() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..2)
            .map(|_| Arc::new(EchoApp::with_service_us(10)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let config = BenchmarkConfig::new(500.0, 150)
            .with_warmup(15)
            .with_seed(2);
        let mut factory = || b"net".to_vec();
        let loopback =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 0, "loopback").unwrap();
        let mut factory = || b"net".to_vec();
        let networked =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 50_000, "networked").unwrap();
        assert!(
            networked.cluster.sojourn.p50_ns >= loopback.cluster.sojourn.p50_ns + 50_000,
            "networked cluster p50 {} vs loopback {}",
            networked.cluster.sojourn.p50_ns,
            loopback.cluster.sojourn.p50_ns
        );
    }

    #[test]
    fn closed_loop_mode_is_rejected() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(100.0, 10)
            .with_load(crate::traffic::LoadMode::Closed { think_ns: 0 });
        let err = run_tcp(&app, &mut factory, &config, 2, 0, "loopback").unwrap_err();
        assert!(matches!(err, HarnessError::Config(_)));
    }
}
