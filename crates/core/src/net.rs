//! Loopback and networked harness configurations.
//!
//! In the loopback configuration the client and the application run on the same machine
//! and exchange requests over TCP through the loopback interface, which exercises the
//! kernel network stack but no physical network (paper Fig. 1, lower right).  The
//! networked configuration adds the propagation delay of NICs, links and switches; since
//! this reproduction has a single machine, that extra delay is added analytically as a
//! constant per direction (see DESIGN.md) while the socket and network-stack work is
//! still performed for real.
//!
//! The client side uses several connections, each with its own sender and receiver
//! thread, mirroring the paper's use of multiple client processes to avoid client-side
//! queuing.  Each receiver thread owns its own collector shard (merged at join — no
//! collector thread or channel), each sender thread records its own pacing error, and
//! server-side payload buffers are pooled: readers take, workers and writers recycle.

use crate::app::{RequestFactory, ServerApp};
use crate::collector::{ClusterCollector, StatsCollector};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::hedge::{HedgeEngine, HedgeMsg};
use crate::integrated::{
    build_cluster_report, build_report, check_instances, interfered, shard_proto,
};
use crate::pool::BufferPool;
use crate::protocol;
use crate::queue::{Completion, PushOutcome, RequestQueue};
use crate::report::{ClusterReport, QueueSummary, RunReport};
use crate::time::{PacingRecorder, RunClock};
use crate::traffic::TrafficShaper;
use crate::worker::WorkerPool;
use crossbeam::channel::unbounded;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Wraps a thread-local I/O failure with which connection and role hit it, so a
/// mid-run peer disconnect surfaces as an actionable diagnostic instead of silently
/// truncating the measurement.
fn connection_error(connection: usize, role: &str, e: io::Error) -> io::Error {
    io::Error::new(
        e.kind(),
        format!("TCP {role} for connection {connection} failed mid-run: {e}"),
    )
}

/// A thread on the request path panicked — a harness bug, not a peer failure.
fn thread_panicked(what: &str) -> HarnessError {
    HarnessError::Config(format!("{what} thread panicked"))
}

/// The sender/receiver thread pair driving one client connection.  Each half returns
/// its measurement artifact plus the I/O error (if any) that ended it early.
struct ClientConn {
    sender: JoinHandle<(PacingRecorder, Option<io::Error>)>,
    receiver: JoinHandle<(StatsCollector, Option<io::Error>)>,
}

/// Spawns the sender/receiver pair for one client connection.  The receiver decodes
/// responses into `shard` until clean EOF (server shut down its write side) or an I/O
/// error; the sender paces `requests` onto the socket, recording its issue error.
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if the socket cannot be configured/cloned or a thread
/// cannot be spawned.
fn spawn_client(
    stream: TcpStream,
    requests: Vec<crate::request::Request>,
    mut shard: StatsCollector,
    clock: RunClock,
    max_ns: u64,
    one_way_delay_ns: u64,
) -> Result<ClientConn, HarnessError> {
    stream.set_nodelay(true).map_err(HarnessError::Io)?;
    let reader_stream = stream.try_clone().map_err(HarnessError::Io)?;

    // Receiver thread: decodes responses into its own collector shard, reusing one
    // scratch buffer for the payload bytes.
    let receiver = std::thread::Builder::new()
        .name("tb-client-recv".into())
        .spawn(move || {
            let mut reader = BufReader::new(reader_stream);
            let mut scratch = Vec::new();
            let error = loop {
                match protocol::read_response_header(&mut reader, &mut scratch) {
                    Ok(Some(header)) => {
                        let record = record_from_header(&header, clock.now_ns(), one_way_delay_ns);
                        shard.record(&record);
                    }
                    // Clean EOF: the server finished responding and shut down.
                    Ok(None) => break None,
                    // The peer vanished mid-run (reset, truncated frame, ...).
                    Err(e) => break Some(e),
                }
            };
            (shard, error)
        })
        .map_err(HarnessError::Io)?;

    // Sender thread: paces its share of the schedule and records its issue error.
    let sender = std::thread::Builder::new()
        .name("tb-client-send".into())
        .spawn(move || {
            let mut writer = BufWriter::new(&stream);
            let mut pacing = PacingRecorder::new();
            let mut error = None;
            for mut request in requests {
                let scheduled_ns = request.issued_ns;
                let now = clock.sleep_until_ns(scheduled_ns);
                if now > max_ns {
                    break;
                }
                pacing.record(scheduled_ns, now);
                request.issued_ns = now;
                if let Err(e) = protocol::write_request(&mut writer, &request) {
                    error = Some(e);
                    break;
                }
            }
            if error.is_none() {
                if let Err(e) = writer.flush() {
                    error = Some(e);
                }
            }
            drop(writer);
            // Signal end-of-requests so the server-side reader can wind down.
            let _ = stream.shutdown(Shutdown::Write);
            (pacing, error)
        })
        .map_err(HarnessError::Io)?;

    Ok(ClientConn { sender, receiver })
}

/// Runs one measurement over TCP (loopback or networked) and returns its report.
///
/// `one_way_delay_ns` is the analytic propagation delay added per direction;
/// pass 0 for the loopback configuration.
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if the server socket cannot be created or a client
/// connection fails; [`HarnessError::Config`] if called with a closed-loop load mode
/// (the TCP runners only support the open-loop methodology).
pub fn run_tcp(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    connections: usize,
    one_way_delay_ns: u64,
    configuration_name: &str,
) -> Result<RunReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "TCP configurations require an open-loop load mode".into(),
        ));
    }
    let connections = connections.max(1);
    app.prepare();

    let clock = RunClock::new();
    let queue = RequestQueue::with_policy(config.admission);
    let observer = queue.observer();
    let buffers = Arc::new(BufferPool::default());
    let pool = WorkerPool::spawn(
        interfered(app, config, 0, clock),
        queue.receiver(),
        clock,
        config.worker_threads,
        shard_proto(config),
        Some(Arc::clone(&buffers)),
    )?;

    // --- server side -------------------------------------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0").map_err(HarnessError::Io)?;
    let addr = listener.local_addr().map_err(HarnessError::Io)?;
    let accept_handle = spawn_server(listener, connections, &queue, clock, &buffers)?;

    // --- build the global open-loop schedule and split it across connections -----------
    let mut rng = tailbench_workloads::rng::seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .ok_or_else(|| HarnessError::Internal("open-loop mode produced no schedule".into()))?;
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let per_connection = shaper.split_round_robin(connections);

    // --- client side ---------------------------------------------------------------------
    let mut clients = Vec::new();
    let max_ns = config.max_duration.as_nanos() as u64;
    for requests in per_connection {
        let stream = TcpStream::connect(addr).map_err(HarnessError::Io)?;
        clients.push(spawn_client(
            stream,
            requests,
            shard_proto(config),
            clock,
            max_ns,
            one_way_delay_ns,
        )?);
    }

    // Wait for all clients to finish sending and receiving, merging their shards.  The
    // first connection-level I/O error fails the run — silently truncated measurements
    // are worse than no measurement.
    let mut stats = shard_proto(config);
    let mut pacing = PacingRecorder::new();
    let mut failure: Option<io::Error> = None;
    for (i, conn) in clients.into_iter().enumerate() {
        let (sent, send_err) = conn
            .sender
            .join()
            .map_err(|_| thread_panicked("client sender"))?;
        pacing.merge(&sent);
        let (shard, recv_err) = conn
            .receiver
            .join()
            .map_err(|_| thread_panicked("client receiver"))?;
        stats.merge(&shard);
        if failure.is_none() {
            failure = send_err
                .map(|e| connection_error(i, "client sender", e))
                .or(recv_err.map(|e| connection_error(i, "client receiver", e)));
        }
    }
    // All server readers have observed EOF by now (the receivers only exit once the
    // server writers shut down their side); dropping our queue handle lets workers exit.
    queue.close();
    pool.join()?;
    let server_errors = accept_handle
        .join()
        .map_err(|_| thread_panicked("server accept"))?;
    if failure.is_none() {
        failure = server_errors.into_iter().next();
    }
    if let Some(e) = failure {
        return Err(HarnessError::Io(e));
    }

    let mut report = build_report(app.name(), configuration_name, config, &stats);
    report.queue_depth = observer.summary();
    report.pacing = pacing.stats();
    Ok(report)
}

/// Builds the client-side [`RequestRecord`](crate::request::RequestRecord) for a decoded
/// response header.  The analytic propagation delay is added once per direction: the
/// request and the response each cross the "wire".
fn record_from_header(
    header: &protocol::ResponseHeader,
    now_ns: u64,
    one_way_delay_ns: u64,
) -> crate::request::RequestRecord {
    crate::request::RequestRecord {
        id: header.id,
        issued_ns: header.issued_ns,
        enqueued_ns: header.enqueued_ns,
        started_ns: header.started_ns,
        completed_ns: header.completed_ns,
        client_received_ns: now_ns + 2 * one_way_delay_ns,
    }
}

/// Runs one cluster measurement over TCP (loopback or networked).
///
/// Each of the `cluster.instances()` server instances gets its own listener, request
/// queue and worker pool; the client opens one connection per instance.  The calling
/// thread is the client-side router: it paces the global open-loop schedule and hands
/// each request's leg(s) to per-connection sender threads chosen by `cluster.fanout` —
/// the socket writes happen off the router thread, so a wide fan-out does not serialize
/// write syscalls into later shards' measured latency.  Per-connection receiver threads
/// decode responses into partial cross-shard collectors merged at run end (the hedge
/// engine owns the collector when hedging is active).  `one_way_delay_ns` is the
/// analytic propagation delay added per direction (0 for loopback).
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if sockets cannot be set up, and
/// [`HarnessError::Config`] for closed-loop load or a wrong `apps` count.
pub fn run_cluster_tcp(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    one_way_delay_ns: u64,
    configuration_name: &str,
) -> Result<ClusterReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "TCP configurations require an open-loop load mode".into(),
        ));
    }
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let clock = RunClock::new();
    let width = cluster.fanout_width();
    let hedge = cluster.active_hedge();
    let tied = cluster.active_tied();
    let warmup = config.warmup_requests as u64;
    let new_cluster_collector =
        || ClusterCollector::new(cluster.shards, warmup).with_tags(config.tags.clone());
    // Per-instance in-flight counts (legs sent minus responses received): the live load
    // signal for the LeastLoaded / PowerOfTwo replica selectors.
    let outstanding: Arc<Vec<AtomicUsize>> =
        Arc::new((0..apps.len()).map(|_| AtomicUsize::new(0)).collect());

    let mut queues = Vec::with_capacity(apps.len());
    let mut observers = Vec::with_capacity(apps.len());
    let mut pools = Vec::with_capacity(apps.len());
    let mut server_handles = Vec::with_capacity(apps.len());
    let mut sender_handles = Vec::with_capacity(apps.len());
    let mut reader_streams = Vec::with_capacity(apps.len());
    let mut leg_txs: Vec<crossbeam::channel::Sender<crate::request::Request>> =
        Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let queue = RequestQueue::with_policy(config.admission);
        observers.push(queue.observer());
        let buffers = Arc::new(BufferPool::default());
        pools.push(WorkerPool::spawn(
            interfered(app, config, i, clock),
            queue.receiver(),
            clock,
            config.worker_threads,
            StatsCollector::new(warmup),
            Some(Arc::clone(&buffers)),
        )?);
        let listener = TcpListener::bind("127.0.0.1:0").map_err(HarnessError::Io)?;
        let addr = listener.local_addr().map_err(HarnessError::Io)?;
        server_handles.push(spawn_server(listener, 1, &queue, clock, &buffers)?);
        queues.push(queue);

        let stream = TcpStream::connect(addr).map_err(HarnessError::Io)?;
        stream.set_nodelay(true).map_err(HarnessError::Io)?;
        reader_streams.push(stream.try_clone().map_err(HarnessError::Io)?);
        // Sender thread: serializes this connection's legs off the router thread.
        let (leg_tx, leg_rx) = unbounded::<crate::request::Request>();
        leg_txs.push(leg_tx);
        sender_handles.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-send-{i}"))
                .spawn(move || {
                    let mut writer = BufWriter::new(&stream);
                    let mut error = None;
                    while let Ok(request) = leg_rx.recv() {
                        if let Err(e) = protocol::write_request(&mut writer, &request) {
                            error = Some(e);
                            break;
                        }
                    }
                    if error.is_none() {
                        if let Err(e) = writer.flush() {
                            error = Some(e);
                        }
                    }
                    drop(writer);
                    // End-of-requests: the server reader unwinds, then its writer, then
                    // our receiver.
                    let _ = stream.shutdown(Shutdown::Write);
                    error
                })
                .map_err(HarnessError::Io)?,
        );
    }

    // With hedging or tied requests active, receivers detour through the hedge engine,
    // which owns the collector, forwards only each leg's first response and (when
    // hedging) reissues stragglers onto the alternate replica's connection.
    let engine = if hedge.is_some() || tied {
        let reissue: Box<dyn FnMut(usize, crate::request::Request) -> bool + Send> =
            if hedge.is_some() {
                let hedge_leg_txs = leg_txs.clone();
                let inflight = Arc::clone(&outstanding);
                Box::new(move |instance: usize, request: crate::request::Request| {
                    let sent = hedge_leg_txs
                        .get(instance)
                        .is_some_and(|tx| tx.send(request).is_ok());
                    if sent {
                        if let Some(count) = inflight.get(instance) {
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    sent
                })
            } else {
                // Tied-only runs never reissue; holding no sender handles here keeps the
                // teardown acyclic even when a server sheds a tied copy at admission.
                Box::new(|_, _| false)
            };
        // A tied loser is already on the wire when the winner responds: there is no
        // cross-network retraction, so the loser runs to completion server-side and
        // simply loses the first-response race here (see DESIGN.md).
        let retract = Box::new(|_, _| false);
        Some(HedgeEngine::spawn(
            hedge,
            cluster.clone(),
            width,
            clock,
            new_cluster_collector(),
            reissue,
            retract,
        )?)
    } else {
        None
    };
    let engine_tx = engine.as_ref().map(HedgeEngine::sender);

    let mut receiver_handles = Vec::with_capacity(apps.len());
    for (i, reader_stream) in reader_streams.into_iter().enumerate() {
        let hedge_tx = engine_tx.clone();
        let shard = i / cluster.replication;
        let mut partial = new_cluster_collector();
        let inflight = Arc::clone(&outstanding);
        receiver_handles.push(
            std::thread::Builder::new()
                .name(format!("tb-cluster-recv-{i}"))
                .spawn(move || {
                    let mut reader = BufReader::new(reader_stream);
                    let mut scratch = Vec::new();
                    let error = loop {
                        match protocol::read_response_header(&mut reader, &mut scratch) {
                            Ok(Some(header)) => {
                                if let Some(count) = inflight.get(i) {
                                    count.fetch_sub(1, Ordering::Relaxed);
                                }
                                let record =
                                    record_from_header(&header, clock.now_ns(), one_way_delay_ns);
                                match &hedge_tx {
                                    Some(tx) => {
                                        let _ = tx.send(HedgeMsg::Completed {
                                            shard,
                                            instance: i,
                                            record,
                                        });
                                    }
                                    None => {
                                        let _ = partial.record_leg(shard, record, width);
                                    }
                                }
                            }
                            // Clean EOF: the server instance finished and shut down.
                            Ok(None) => break None,
                            // The server instance vanished mid-run.
                            Err(e) => break Some(e),
                        }
                    };
                    (partial, error)
                })
                .map_err(HarnessError::Io)?,
        );
    }

    // --- client-side router: pace the global schedule onto the shard connections ------
    let mut rng = tailbench_workloads::rng::seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .ok_or_else(|| HarnessError::Internal("open-loop mode produced no schedule".into()))?;
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let max_ns = config.max_duration.as_nanos() as u64;
    let mut pacing = PacingRecorder::new();
    'pacing: for mut request in shaper.into_requests() {
        let scheduled_ns = request.issued_ns;
        let now = clock.sleep_until_ns(scheduled_ns);
        if now > max_ns {
            break;
        }
        pacing.record(scheduled_ns, now);
        request.issued_ns = now;
        let legs = match cluster.fanout.route(&request.payload, cluster.shards) {
            Route::Shard(shard) => shard..shard + 1,
            Route::AllShards => 0..cluster.shards,
        };
        for shard in legs {
            let primary = cluster.route_replica(shard, request.id.0, config.seed, &|i| {
                outstanding.get(i).map_or(0, |c| c.load(Ordering::Relaxed))
            });
            if tied {
                let secondary = cluster.secondary_instance(shard, primary);
                if let Some(tx) = &engine_tx {
                    // Announce the tied pair before either server can answer it.
                    let _ = tx.send(HedgeMsg::DispatchedTied {
                        id: request.id.0,
                        shard,
                        primary,
                        secondary,
                    });
                }
                for i in [primary, secondary] {
                    let delivered = leg_txs
                        .get(i)
                        .is_some_and(|tx| tx.send(request.clone()).is_ok());
                    if !delivered {
                        break 'pacing;
                    }
                    if let Some(count) = outstanding.get(i) {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                }
            } else {
                if let Some(tx) = &engine_tx {
                    // Announce the leg before the server can possibly answer it.
                    let _ = tx.send(HedgeMsg::Dispatched {
                        request: request.clone(),
                        shard,
                        instance: primary,
                    });
                }
                let delivered = leg_txs
                    .get(primary)
                    .is_some_and(|tx| tx.send(request.clone()).is_ok());
                if !delivered {
                    break 'pacing;
                }
                if let Some(count) = outstanding.get(primary) {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    if let Some(tx) = &engine_tx {
        let _ = tx.send(HedgeMsg::NoMoreDispatches);
    }
    drop(engine_tx);
    drop(leg_txs);

    let mut failure: Option<io::Error> = None;
    for (i, sender) in sender_handles.into_iter().enumerate() {
        let send_err = sender
            .join()
            .map_err(|_| thread_panicked("cluster sender"))?;
        if failure.is_none() {
            failure = send_err.map(|e| connection_error(i, "cluster sender", e));
        }
    }
    let mut partials = Vec::with_capacity(receiver_handles.len());
    for (i, receiver) in receiver_handles.into_iter().enumerate() {
        let (partial, recv_err) = receiver
            .join()
            .map_err(|_| thread_panicked("cluster receiver"))?;
        partials.push(partial);
        if failure.is_none() {
            failure = recv_err.map(|e| connection_error(i, "cluster receiver", e));
        }
    }
    for queue in queues {
        queue.close();
    }
    for pool in pools {
        pool.join()?;
    }
    for (i, server) in server_handles.into_iter().enumerate() {
        let server_errors = server
            .join()
            .map_err(|_| thread_panicked("server accept"))?;
        if failure.is_none() {
            failure = server_errors
                .into_iter()
                .next()
                .map(|e| connection_error(i, "server instance", e));
        }
    }
    if let Some(e) = failure {
        return Err(HarnessError::Io(e));
    }
    let (stats, hedge_stats) = match engine {
        Some(engine) => {
            let (hedge_stats, collector) = engine.join()?;
            (collector, Some(hedge_stats))
        }
        None => {
            let mut merged = new_cluster_collector();
            for partial in partials {
                merged.merge(partial);
            }
            (merged, None)
        }
    };
    let queue_summaries: Vec<QueueSummary> = observers.iter().map(|o| o.summary()).collect();
    let mut report = build_cluster_report(
        apps.first().map_or("", |a| a.name()),
        configuration_name,
        config,
        cluster,
        &stats,
        hedge_stats,
    );
    report.cluster.queue_depth = QueueSummary::aggregate(&queue_summaries);
    report.cluster.pacing = pacing.stats();
    Ok(report)
}

/// Accepts `connections` connections and spawns a reader and a writer thread per
/// connection.  Readers pull request payload buffers from `buffers` and writers recycle
/// response payloads back into it, closing the pool's request/response cycle.  Returns
/// a handle that joins all per-connection threads and reports every I/O error they hit
/// (empty on a clean run), so a client that vanishes mid-run fails the measurement
/// with a diagnostic instead of silently truncating it.
///
/// # Errors
///
/// Returns [`HarnessError::Io`] if the accept thread cannot be spawned.
fn spawn_server(
    listener: TcpListener,
    connections: usize,
    queue: &RequestQueue,
    clock: RunClock,
    buffers: &Arc<BufferPool>,
) -> Result<JoinHandle<Vec<io::Error>>, HarnessError> {
    let queue_tx = queue.sender();
    let buffers = Arc::clone(buffers);
    std::thread::Builder::new()
        .name("tb-server-accept".into())
        .spawn(move || {
            let mut errors = Vec::new();
            let mut conn_handles = Vec::new();
            for c in 0..connections {
                let (stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(e) => {
                        errors.push(connection_error(c, "server accept", e));
                        break;
                    }
                };
                let _ = stream.set_nodelay(true);
                let (resp_tx, resp_rx) = unbounded();
                let reader_stream = match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        errors.push(connection_error(c, "server stream clone", e));
                        continue;
                    }
                };
                let queue_tx = queue_tx.clone();
                let read_pool = Arc::clone(&buffers);
                let write_pool = Arc::clone(&buffers);

                let reader = std::thread::Builder::new()
                    .name("tb-server-recv".into())
                    .spawn(move || {
                        let mut reader = BufReader::new(reader_stream);
                        loop {
                            match protocol::read_request_pooled(&mut reader, &read_pool) {
                                Ok(Some(request)) => {
                                    let enqueued_ns = clock.now_ns();
                                    if queue_tx.push(
                                        request,
                                        enqueued_ns,
                                        Completion::Responder(resp_tx.clone()),
                                    ) == PushOutcome::Closed
                                    {
                                        break None;
                                    }
                                }
                                // Clean EOF: the client shut down its write side.
                                Ok(None) => break None,
                                // The client vanished mid-frame.
                                Err(e) => break Some(e),
                            }
                        }
                        // Dropping resp_tx here lets the writer exit once in-flight
                        // requests drain.
                    });

                let writer = std::thread::Builder::new()
                    .name("tb-server-send".into())
                    .spawn(move || {
                        let mut writer = BufWriter::new(&stream);
                        let mut error = None;
                        while let Ok(completion) = resp_rx.recv() {
                            if let Err(e) = protocol::write_response(&mut writer, &completion) {
                                error = Some(e);
                                break;
                            }
                            write_pool.recycle(completion.response_payload);
                        }
                        if error.is_none() {
                            if let Err(e) = writer.flush() {
                                error = Some(e);
                            }
                        }
                        drop(writer);
                        let _ = stream.shutdown(Shutdown::Write);
                        error
                    });

                match (reader, writer) {
                    (Ok(r), Ok(w)) => conn_handles.push((c, r, w)),
                    (r, w) => {
                        errors.extend(
                            r.err()
                                .into_iter()
                                .chain(w.err())
                                .map(|e| connection_error(c, "server thread spawn", e)),
                        );
                    }
                }
            }
            drop(queue_tx);
            for (c, reader, writer) in conn_handles {
                if let Ok(Some(e)) = reader.join() {
                    errors.push(connection_error(c, "server reader", e));
                }
                if let Ok(Some(e)) = writer.join() {
                    errors.push(connection_error(c, "server writer", e));
                }
            }
            errors
        })
        .map_err(HarnessError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use crate::config::BenchmarkConfig;
    use std::time::Duration;

    fn echo_app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(10))
    }

    #[test]
    fn loopback_run_completes_and_measures() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_max_duration(Duration::from_secs(30));
        let report = run_tcp(&app, &mut factory, &config, 4, 0, "loopback").unwrap();
        assert_eq!(report.configuration, "loopback");
        assert!(report.requests > 250, "measured {}", report.requests);
        assert!(report.sojourn.mean_ns > 0.0);
        // Loopback adds real socket overhead on top of service time.
        assert!(report.sojourn.mean_ns >= report.service.mean_ns);
        // Queue and pacing accounting flow through the TCP path too.
        assert!(report.queue_depth.accepted >= report.requests);
        assert!(report.pacing.count >= report.requests);
    }

    #[test]
    fn networked_delay_increases_sojourn() {
        let app = echo_app();
        let mut factory = || b"net".to_vec();
        let base = BenchmarkConfig::new(800.0, 200)
            .with_warmup(20)
            .with_seed(9);
        let loopback = run_tcp(&app, &mut factory, &base, 4, 0, "loopback").unwrap();
        let networked = run_tcp(&app, &mut factory, &base, 4, 50_000, "networked").unwrap();
        // 100 us of added round-trip must be visible in the median sojourn.
        assert!(
            networked.sojourn.p50_ns >= loopback.sojourn.p50_ns + 50_000,
            "networked p50 {} vs loopback p50 {}",
            networked.sojourn.p50_ns,
            loopback.sojourn.p50_ns
        );
    }

    #[test]
    fn loopback_cluster_broadcast_merges_on_last_response() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..2)
            .map(|_| Arc::new(EchoApp::with_service_us(10)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let mut factory = || b"net".to_vec();
        let config = BenchmarkConfig::new(800.0, 250)
            .with_warmup(25)
            .with_max_duration(Duration::from_secs(30));
        let report =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 0, "loopback").unwrap();
        assert_eq!(report.shards, 2);
        assert!(report.cluster.requests > 200, "{}", report.cluster.requests);
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        assert!(report.cluster.sojourn.p50_ns > 0);
        // Waiting for both shards can never beat the slower shard's tail.
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
        // Both instances' queues feed the aggregate summary.
        assert!(report.cluster.queue_depth.accepted >= 2 * report.cluster.requests);
    }

    #[test]
    fn networked_cluster_delay_shifts_the_distribution() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..2)
            .map(|_| Arc::new(EchoApp::with_service_us(10)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let config = BenchmarkConfig::new(500.0, 150)
            .with_warmup(15)
            .with_seed(2);
        let mut factory = || b"net".to_vec();
        let loopback =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 0, "loopback").unwrap();
        let mut factory = || b"net".to_vec();
        let networked =
            run_cluster_tcp(&apps, &mut factory, &config, &cluster, 50_000, "networked").unwrap();
        assert!(
            networked.cluster.sojourn.p50_ns >= loopback.cluster.sojourn.p50_ns + 50_000,
            "networked cluster p50 {} vs loopback {}",
            networked.cluster.sojourn.p50_ns,
            loopback.cluster.sojourn.p50_ns
        );
    }

    #[test]
    fn killing_one_server_mid_run_fails_the_run_with_a_diagnostic() {
        use crate::collector::StatsCollector;
        use crate::request::{Request, RequestId};
        // A fake server that answers the first request with a truncated frame and then
        // dies — the regression this pins: the old client threads swallowed the I/O
        // error and the run completed silently with partial data.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64];
            let _ = std::io::Read::read(&mut stream, &mut buf);
            // Half a response header, then a hard close mid-frame.
            let _ = std::io::Write::write_all(&mut stream, &[0xAB, 0xCD, 0xEF]);
        });
        let requests: Vec<Request> = (0..50)
            .map(|i| Request {
                id: RequestId(i),
                payload: b"kill".to_vec(),
                issued_ns: 0,
            })
            .collect();
        let stream = TcpStream::connect(addr).unwrap();
        let conn = spawn_client(
            stream,
            requests,
            StatsCollector::new(0),
            RunClock::new(),
            u64::MAX,
            0,
        )
        .unwrap();
        let (_, send_err) = conn.sender.join().unwrap();
        let (_, recv_err) = conn.receiver.join().unwrap();
        server.join().unwrap();
        assert!(
            send_err.is_some() || recv_err.is_some(),
            "a server dying mid-run must surface an I/O error, not truncate silently"
        );
    }

    #[test]
    fn a_client_vanishing_mid_frame_surfaces_a_server_diagnostic() {
        let queue = RequestQueue::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let buffers = Arc::new(BufferPool::default());
        let handle = spawn_server(listener, 1, &queue, RunClock::new(), &buffers).unwrap();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            // A truncated request frame, then the connection drops.
            std::io::Write::write_all(&mut stream, &[0xFF; 5]).unwrap();
        }
        let errors = handle.join().unwrap();
        assert!(
            !errors.is_empty(),
            "a client vanishing mid-frame must be reported"
        );
        assert!(
            errors[0].to_string().contains("server reader"),
            "diagnostic names the failing role: {}",
            errors[0]
        );
        queue.close();
    }

    #[test]
    fn closed_loop_mode_is_rejected() {
        let app = echo_app();
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(100.0, 10)
            .with_load(crate::traffic::LoadMode::Closed { think_ns: 0 });
        let err = run_tcp(&app, &mut factory, &config, 2, 0, "loopback").unwrap_err();
        assert!(matches!(err, HarnessError::Config(_)));
    }
}
