//! Poison-tolerant lock helpers for the hot-path modules.
//!
//! A poisoned mutex means another thread panicked while holding the lock.  The
//! state these locks guard (queue depth accounting, buffer free lists) stays
//! structurally valid across any single aborted update, so the harness recovers
//! the guard and keeps running instead of cascading the panic into every thread
//! that touches the lock; the original panic still surfaces when the owning
//! thread is joined.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar`, recovering the guard if the mutex was poisoned while the
/// waiter was parked.
pub(crate) fn wait_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recover_survives_poison() {
        let mutex = Mutex::new(7u32);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().expect("first lock");
            panic!("poison it");
        }));
        assert!(caught.is_err());
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_recover(&mutex), 7);
    }
}
