//! The application-facing interface of the harness.
//!
//! Every TailBench application plugs into the harness by implementing two traits:
//!
//! * [`ServerApp`] — the server side: given a request payload, produce a response.  The
//!   implementation must be thread-safe because the harness drives it from multiple
//!   worker threads.
//! * [`RequestFactory`] — the client side: produce the request payloads that make up the
//!   workload (e.g. Zipfian search queries or TPC-C transactions).
//!
//! A [`CostModel`] converts per-request [`WorkProfile`](crate::request::WorkProfile)s
//! into simulated service times for the discrete-event simulation runner; the analytic
//! microarchitecture model in `tailbench-simarch` is the primary implementation.

use crate::request::{Response, WorkProfile};

/// The server side of a TailBench application.
///
/// Implementations must be cheap to share across worker threads (`Send + Sync`); any
/// internal mutability must be synchronized.  The harness calls [`ServerApp::handle`]
/// once per request.
pub trait ServerApp: Send + Sync {
    /// A short, stable name used in reports (e.g. `"xapian"`).
    fn name(&self) -> &str;

    /// Processes one request payload and returns the response.
    ///
    /// The payload encoding is application-defined; the harness treats it as opaque
    /// bytes, which keeps the harness identical across configurations (the networked
    /// configurations ship the same bytes over TCP).
    fn handle(&self, payload: &[u8]) -> Response;

    /// Optional hook invoked once before the warmup phase (e.g. to pre-touch data
    /// structures). The default does nothing.
    fn prepare(&self) {}
}

/// The client side of a TailBench application: a source of request payloads.
///
/// Factories are per-client-thread state machines; they are `Send` but not required to be
/// `Sync`.  The harness never inspects payloads.
pub trait RequestFactory: Send {
    /// Produces the next request payload.
    fn next_request(&mut self) -> Vec<u8>;
}

/// Blanket implementation so closures can be used as factories in tests and examples.
impl<F> RequestFactory for F
where
    F: FnMut() -> Vec<u8> + Send,
{
    fn next_request(&mut self) -> Vec<u8> {
        self()
    }
}

/// Creates several independent request factories, one per client thread, so that each
/// thread draws from a decorrelated stream.
pub trait FactoryBuilder: Send + Sync {
    /// Builds the factory for client-thread `stream` of a run seeded with `seed`.
    fn build(&self, seed: u64, stream: u64) -> Box<dyn RequestFactory>;
}

/// Converts application work profiles into simulated service times.
///
/// `active_threads` is the number of workers concurrently busy when the request runs,
/// which lets implementations model contention for shared memory resources and
/// synchronization (paper §VII).
pub trait CostModel: Send + Sync {
    /// Service time in nanoseconds for a request with the given work profile, when
    /// `active_threads` workers (including this one) are busy.
    fn service_time_ns(&self, profile: &WorkProfile, active_threads: usize) -> u64;
}

/// A trivial cost model: fixed nanoseconds per instruction, ignoring the memory system.
///
/// Useful for tests and as the "infinitely fast memory, no contention" reference point.
#[derive(Debug, Clone, Copy)]
pub struct InstructionRateModel {
    /// Nanoseconds charged per instruction (1 / (IPC × frequency)).
    pub ns_per_instruction: f64,
}

impl Default for InstructionRateModel {
    fn default() -> Self {
        // 2.4 GHz × IPC 1.5 ≈ 3.6 giga-instructions/s ≈ 0.28 ns per instruction.
        InstructionRateModel {
            ns_per_instruction: 0.28,
        }
    }
}

impl CostModel for InstructionRateModel {
    fn service_time_ns(&self, profile: &WorkProfile, _active_threads: usize) -> u64 {
        (profile.instructions as f64 * self.ns_per_instruction).round() as u64
    }
}

/// An echo application used by harness unit tests: it returns the payload unchanged and
/// optionally burns a configurable amount of CPU time per request.
#[derive(Debug, Default)]
pub struct EchoApp {
    /// Busy-loop iterations to run per request (0 = respond immediately).
    pub spin_iters: u64,
}

impl EchoApp {
    /// Creates an echo app that spins for roughly `approx_us` microseconds per request.
    #[must_use]
    pub fn with_service_us(approx_us: u64) -> Self {
        // Calibrating spin loops precisely is unnecessary; ~3 iterations/ns is a
        // reasonable ballpark for a simple integer loop and tests only rely on ordering.
        EchoApp {
            spin_iters: approx_us * 1_000,
        }
    }
}

impl ServerApp for EchoApp {
    fn name(&self) -> &str {
        "echo"
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let mut acc = 0u64;
        for i in 0..self.spin_iters {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        // Keep the accumulator observable so the loop is not optimized away.
        let mut out = payload.to_vec();
        out.push((acc & 0xFF) as u8);
        Response::with_work(
            out,
            WorkProfile {
                instructions: 10 + self.spin_iters,
                mem_reads: payload.len() as u64 / 8,
                mem_writes: payload.len() as u64 / 8,
                footprint_bytes: payload.len() as u64,
                locality: 1.0,
                critical_fraction: 0.0,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_app_round_trips_payload() {
        let app = EchoApp::default();
        let resp = app.handle(b"hello");
        assert_eq!(&resp.payload[..5], b"hello");
        assert_eq!(app.name(), "echo");
    }

    #[test]
    fn closure_factories_work() {
        let mut counter = 0u8;
        let mut factory = move || {
            counter += 1;
            vec![counter]
        };
        assert_eq!(RequestFactory::next_request(&mut factory), vec![1]);
        assert_eq!(RequestFactory::next_request(&mut factory), vec![2]);
    }

    #[test]
    fn instruction_rate_model_scales_linearly() {
        let m = InstructionRateModel {
            ns_per_instruction: 0.5,
        };
        let p1 = WorkProfile {
            instructions: 1_000,
            ..WorkProfile::default()
        };
        let p2 = WorkProfile {
            instructions: 2_000,
            ..WorkProfile::default()
        };
        assert_eq!(m.service_time_ns(&p1, 1), 500);
        assert_eq!(m.service_time_ns(&p2, 4), 1_000);
    }

    #[test]
    fn echo_app_spin_increases_work() {
        let fast = EchoApp::default();
        let slow = EchoApp::with_service_us(10);
        assert!(slow.handle(b"x").work.instructions > fast.handle(b"x").work.instructions);
    }
}
