//! Deterministic interference injection.
//!
//! Real latency-critical services see transient interference — a co-located batch job
//! stealing cycles, a garbage-collection or power-management pause, scheduling jitter —
//! and those transients, not steady-state queueing, often dominate the tail.  This
//! module lets a run inject such faults *deterministically*: an [`InterferencePlan`] is
//! a list of [`FaultEvent`]s with explicit time windows, applied identically in the
//! discrete-event simulation (service times are adjusted analytically) and in the
//! wall-clock configurations (the [`InterferedApp`] wrapper stalls or inflates inside
//! the request handler).
//!
//! Semantics (both paths): a fault affects requests whose *service start* falls inside
//! the fault window.  `Pause` stalls the request until the window ends before any work
//! happens; `SlowDown` multiplies the request's service time; `Jitter` adds a
//! per-request pseudo-random extra derived from the request id, so the DES path stays
//! bit-for-bit deterministic (see DESIGN.md, "Scenario engine").

use crate::app::ServerApp;
use crate::request::Response;
use crate::time::RunClock;

/// What a fault does to requests that start service inside its window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Service-time inflation: service time is multiplied by `factor` (≥ 1 slows the
    /// server down; the slow-shard scenario).
    SlowDown {
        /// Multiplicative service-time factor.
        factor: f64,
    },
    /// Full-server pause: no request makes progress until the window ends (GC pause,
    /// power-state transition).  Requests starting inside the window stall to its end.
    Pause,
    /// Per-request jitter: adds a pseudo-random extra in `[0, amplitude_ns]`, drawn
    /// deterministically from the request id.
    Jitter {
        /// Maximum added service time in nanoseconds.
        amplitude_ns: u64,
    },
}

/// Which server instance(s) a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every instance (and the single server of non-cluster runs).
    All,
    /// One cluster instance, in shard-major order (`shard * replication + replica`).
    /// Non-cluster runs treat the single server as instance 0.
    Instance(usize),
}

/// One fault with its time window (ns since the run epoch, `[start_ns, end_ns)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Which instance(s) the fault hits.
    pub target: FaultTarget,
    /// Window start, inclusive, ns since the run epoch.
    pub start_ns: u64,
    /// Window end, exclusive, ns since the run epoch.
    pub end_ns: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Returns `true` if the fault applies to `instance` at time `now_ns`.
    #[must_use]
    pub fn applies(&self, instance: usize, now_ns: u64) -> bool {
        let hit = match self.target {
            FaultTarget::All => true,
            FaultTarget::Instance(i) => i == instance,
        };
        hit && now_ns >= self.start_ns && now_ns < self.end_ns
    }
}

/// A deterministic schedule of fault events for one run.
#[derive(Debug, Clone, Default)]
pub struct InterferencePlan {
    /// The fault events; order is irrelevant (effects compose commutatively).
    pub events: Vec<FaultEvent>,
}

impl InterferencePlan {
    /// A plan with no faults (the default for every run).
    #[must_use]
    pub fn none() -> Self {
        InterferencePlan::default()
    }

    /// Returns `true` if the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a slow-shard window: `instance` runs `factor`× slower during the window.
    #[must_use]
    pub fn slow_instance(
        mut self,
        instance: usize,
        start_ns: u64,
        end_ns: u64,
        factor: f64,
    ) -> Self {
        self.events.push(FaultEvent {
            target: FaultTarget::Instance(instance),
            start_ns,
            end_ns,
            kind: FaultKind::SlowDown { factor },
        });
        self
    }

    /// Adds a full pause of `instance` during the window.
    #[must_use]
    pub fn pause_instance(mut self, instance: usize, start_ns: u64, end_ns: u64) -> Self {
        self.events.push(FaultEvent {
            target: FaultTarget::Instance(instance),
            start_ns,
            end_ns,
            kind: FaultKind::Pause,
        });
        self
    }

    /// Adds per-request jitter on every instance during the window.
    #[must_use]
    pub fn jitter_all(mut self, start_ns: u64, end_ns: u64, amplitude_ns: u64) -> Self {
        self.events.push(FaultEvent {
            target: FaultTarget::All,
            start_ns,
            end_ns,
            kind: FaultKind::Jitter { amplitude_ns },
        });
        self
    }

    /// Restricts the plan to the events visible to one instance (used when wrapping
    /// per-instance applications in the wall-clock configurations).
    #[must_use]
    pub fn for_instance(&self, instance: usize) -> InterferencePlan {
        InterferencePlan {
            events: self
                .events
                .iter()
                .filter(|e| match e.target {
                    FaultTarget::All => true,
                    FaultTarget::Instance(i) => i == instance,
                })
                .copied()
                .collect(),
        }
    }

    /// The adjusted service time for a request of `base_service_ns` starting at
    /// `start_ns` on `instance` — the DES application of the plan.
    ///
    /// Composition: the stall of the longest covering `Pause` window comes first, then
    /// every covering `SlowDown` factor multiplies the base service time, then every
    /// covering `Jitter` adds its per-request extra.
    #[must_use]
    pub fn adjusted_service_ns(
        &self,
        instance: usize,
        start_ns: u64,
        base_service_ns: u64,
        request_id: u64,
    ) -> u64 {
        if self.events.is_empty() {
            return base_service_ns;
        }
        let mut stall = 0u64;
        let mut factor = 1.0f64;
        let mut extra = 0u64;
        for event in &self.events {
            if !event.applies(instance, start_ns) {
                continue;
            }
            match event.kind {
                FaultKind::Pause => stall = stall.max(event.end_ns - start_ns),
                FaultKind::SlowDown { factor: f } => factor *= f.max(0.0),
                FaultKind::Jitter { amplitude_ns } => {
                    extra = extra.saturating_add(jitter_ns(request_id, instance, amplitude_ns));
                }
            }
        }
        stall
            .saturating_add((base_service_ns as f64 * factor).round() as u64)
            .saturating_add(extra)
    }
}

/// Deterministic per-request jitter in `[0, amplitude_ns]`: a SplitMix64 finalizer over
/// the (request id, instance) pair, platform-stable so DES runs pin exact percentiles.
#[must_use]
pub fn jitter_ns(request_id: u64, instance: usize, amplitude_ns: u64) -> u64 {
    if amplitude_ns == 0 {
        return 0;
    }
    let mut z = request_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(instance as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    // saturating_add keeps an `amplitude_ns == u64::MAX` plan from wrapping the divisor
    // to zero (the zero-amplitude case returned above).
    (z ^ (z >> 31)) % amplitude_ns.saturating_add(1)
}

/// Wall-clock interference wrapper: executes the inner application and re-creates the
/// plan's effects inside the handler, where they are measured as service time (matching
/// the DES semantics, which also charge faults to service).
///
/// `Pause` sleeps until the window end before invoking the application; `SlowDown`
/// spins for `(factor - 1) ×` the measured inner service time afterwards; `Jitter`
/// spins for the deterministic per-request extra.  The wrapper shares the run's
/// [`RunClock`], so fault windows line up with the request timeline of the report.
pub struct InterferedApp {
    inner: std::sync::Arc<dyn ServerApp>,
    plan: InterferencePlan,
    instance: usize,
    clock: RunClock,
    /// Wall-clock handlers do not see request ids, so jitter draws from a per-request
    /// sequence number instead (deterministic DES runs use the id-based path).
    seq: std::sync::atomic::AtomicU64,
}

impl InterferedApp {
    /// Wraps `inner` with the instance-relevant part of `plan`.
    #[must_use]
    pub fn new(
        inner: std::sync::Arc<dyn ServerApp>,
        plan: &InterferencePlan,
        instance: usize,
        clock: RunClock,
    ) -> Self {
        InterferedApp {
            inner,
            plan: plan.for_instance(instance),
            instance,
            clock,
            seq: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl ServerApp for InterferedApp {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn prepare(&self) {
        self.inner.prepare();
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let start_ns = self.clock.now_ns();
        let mut stall_until = start_ns;
        let mut factor = 1.0f64;
        let mut extra = 0u64;
        let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        for event in &self.plan.events {
            if !event.applies(self.instance, start_ns) {
                continue;
            }
            match event.kind {
                FaultKind::Pause => stall_until = stall_until.max(event.end_ns),
                FaultKind::SlowDown { factor: f } => factor *= f.max(0.0),
                FaultKind::Jitter { amplitude_ns } => {
                    extra = extra.saturating_add(jitter_ns(seq, self.instance, amplitude_ns));
                }
            }
        }
        if stall_until > start_ns {
            let _ = self.clock.sleep_until_ns(stall_until);
        }
        let inner_start = self.clock.now_ns();
        let response = self.inner.handle(payload);
        let inner_ns = self.clock.now_ns().saturating_sub(inner_start);
        let inflate = (inner_ns as f64 * (factor - 1.0)).max(0.0).round() as u64;
        let spin_until = self
            .clock
            .now_ns()
            .saturating_add(inflate)
            .saturating_add(extra);
        while self.clock.now_ns() < spin_until {
            std::hint::spin_loop();
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::EchoApp;
    use std::sync::Arc;

    #[test]
    fn empty_plan_is_identity() {
        let plan = InterferencePlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.adjusted_service_ns(0, 100, 1_000, 7), 1_000);
    }

    #[test]
    fn slowdown_multiplies_inside_the_window_only() {
        let plan = InterferencePlan::none().slow_instance(1, 1_000, 2_000, 3.0);
        assert_eq!(plan.adjusted_service_ns(1, 1_500, 100, 0), 300);
        // Other instance, before the window, and at the exclusive end: untouched.
        assert_eq!(plan.adjusted_service_ns(0, 1_500, 100, 0), 100);
        assert_eq!(plan.adjusted_service_ns(1, 999, 100, 0), 100);
        assert_eq!(plan.adjusted_service_ns(1, 2_000, 100, 0), 100);
    }

    #[test]
    fn pause_stalls_to_the_window_end() {
        let plan = InterferencePlan::none().pause_instance(0, 1_000, 5_000);
        // Starting at 3_000 stalls 2_000 ns, then serves 100 ns.
        assert_eq!(plan.adjusted_service_ns(0, 3_000, 100, 0), 2_100);
        assert_eq!(plan.adjusted_service_ns(0, 6_000, 100, 0), 100);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_varies_by_request() {
        let plan = InterferencePlan::none().jitter_all(0, u64::MAX, 10_000);
        let a = plan.adjusted_service_ns(0, 10, 100, 1);
        let b = plan.adjusted_service_ns(0, 10, 100, 1);
        assert_eq!(a, b, "same request id must draw the same jitter");
        assert!((100..=10_100).contains(&a));
        let distinct: std::collections::HashSet<u64> = (0..64)
            .map(|id| plan.adjusted_service_ns(0, 10, 100, id))
            .collect();
        assert!(distinct.len() > 32, "jitter must spread across request ids");
        // An unbounded amplitude must not wrap the modulo divisor to zero.
        assert!(jitter_ns(5, 0, u64::MAX) < u64::MAX);
    }

    #[test]
    fn for_instance_filters_targets() {
        let plan = InterferencePlan::none()
            .slow_instance(0, 0, 10, 2.0)
            .slow_instance(3, 0, 10, 2.0)
            .jitter_all(0, 10, 100);
        assert_eq!(plan.for_instance(0).events.len(), 2);
        assert_eq!(plan.for_instance(3).events.len(), 2);
        assert_eq!(plan.for_instance(1).events.len(), 1);
    }

    #[test]
    fn interfered_app_pause_inflates_wall_clock_service() {
        let clock = RunClock::new();
        let inner: Arc<dyn ServerApp> = Arc::new(EchoApp::default());
        // Pause until 3 ms past the epoch: a request handled right away must take until
        // then to come back.
        let plan = InterferencePlan::none().pause_instance(0, 0, 3_000_000);
        let app = InterferedApp::new(inner, &plan, 0, clock);
        let response = app.handle(b"x");
        assert!(clock.now_ns() >= 3_000_000);
        assert_eq!(&response.payload[..1], b"x");
        assert_eq!(app.name(), "echo");
    }
}
