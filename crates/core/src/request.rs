//! Requests, responses and per-request latency accounting.
//!
//! The TailBench harness measures, for every request, the *queuing time* (time spent in
//! the request queue), the *service time* (time an application thread spends processing
//! it) and the *sojourn time* (end-to-end latency as seen by the client, which adds any
//! client↔server transport overheads).  The types in this module carry those timestamps
//! through the harness.

use serde::{Deserialize, Serialize};

/// Identifier of a request within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// A work-characterization record emitted by an application for one request.
///
/// Applications fill this in while (or right after) processing a request; the
/// [`CostModel`](crate::app::CostModel) implementations in `tailbench-simarch` translate
/// it into simulated service time.  All fields are best-effort estimates — the point is
/// to capture relative differences between applications and requests, not exact counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkProfile {
    /// Approximate dynamic instruction count.
    pub instructions: u64,
    /// Approximate number of memory reads (loads) performed.
    pub mem_reads: u64,
    /// Approximate number of memory writes (stores) performed.
    pub mem_writes: u64,
    /// Approximate data footprint touched by the request, in bytes.  Determines how much
    /// of the cache hierarchy the request's accesses fit in.
    pub footprint_bytes: u64,
    /// Fraction of accesses with high temporal/spatial locality, in `[0, 1]`.
    pub locality: f64,
    /// Fraction of the request's work spent inside global critical sections, in `[0, 1]`.
    /// Drives the synchronization-overhead term of the multithreaded cost model (the
    /// silo case study of paper §VII).
    pub critical_fraction: f64,
}

impl WorkProfile {
    /// Total memory accesses (reads + writes).
    #[must_use]
    pub fn mem_accesses(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }

    /// Merges another profile into this one (summing counts, max-ing fractions weighted
    /// by instruction count).
    #[must_use]
    pub fn combined(&self, other: &WorkProfile) -> WorkProfile {
        let total_instr = self.instructions + other.instructions;
        let wavg = |a: f64, b: f64| {
            if total_instr == 0 {
                0.0
            } else {
                (a * self.instructions as f64 + b * other.instructions as f64) / total_instr as f64
            }
        };
        WorkProfile {
            instructions: total_instr,
            mem_reads: self.mem_reads + other.mem_reads,
            mem_writes: self.mem_writes + other.mem_writes,
            footprint_bytes: self.footprint_bytes.max(other.footprint_bytes),
            locality: wavg(self.locality, other.locality),
            critical_fraction: wavg(self.critical_fraction, other.critical_fraction),
        }
    }
}

/// A request travelling through the harness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique identifier within the run.
    pub id: RequestId,
    /// Application-specific payload (each application defines its own encoding).
    pub payload: Vec<u8>,
    /// Time the client issued the request, in nanoseconds since the run epoch.
    pub issued_ns: u64,
}

/// The application's answer to a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Application-specific payload.
    pub payload: Vec<u8>,
    /// Work characterization of the processing that produced this response.
    pub work: WorkProfile,
}

impl Response {
    /// Creates a response with an empty work profile (for applications that do not
    /// participate in simulated runs).
    #[must_use]
    pub fn new(payload: Vec<u8>) -> Self {
        Response {
            payload,
            work: WorkProfile::default(),
        }
    }

    /// Creates a response with an explicit work profile.
    #[must_use]
    pub fn with_work(payload: Vec<u8>, work: WorkProfile) -> Self {
        Response { payload, work }
    }
}

/// Complete latency record of one finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Which request this record describes.
    pub id: RequestId,
    /// Client issue time (ns since the run epoch).
    pub issued_ns: u64,
    /// Time the request entered the server's request queue.
    pub enqueued_ns: u64,
    /// Time an application worker started processing it.
    pub started_ns: u64,
    /// Time processing finished.
    pub completed_ns: u64,
    /// Time the response reached the client (equals `completed_ns` in the integrated
    /// configuration; later in the loopback/networked configurations).
    pub client_received_ns: u64,
}

impl RequestRecord {
    /// Queuing time: waiting in the request queue before a worker picked it up.
    #[must_use]
    pub fn queue_ns(&self) -> u64 {
        self.started_ns.saturating_sub(self.enqueued_ns)
    }

    /// Service time: processing time on an application worker.
    #[must_use]
    pub fn service_ns(&self) -> u64 {
        self.completed_ns.saturating_sub(self.started_ns)
    }

    /// Sojourn time: end-to-end latency seen by the client, including queuing and any
    /// transport overhead.
    #[must_use]
    pub fn sojourn_ns(&self) -> u64 {
        self.client_received_ns.saturating_sub(self.issued_ns)
    }

    /// Transport overhead not accounted to queueing or service (network / protocol /
    /// harness costs).
    #[must_use]
    pub fn overhead_ns(&self) -> u64 {
        self.sojourn_ns()
            .saturating_sub(self.queue_ns())
            .saturating_sub(self.service_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            id: RequestId(7),
            issued_ns: 1_000,
            enqueued_ns: 1_200,
            started_ns: 1_500,
            completed_ns: 2_500,
            client_received_ns: 2_800,
        }
    }

    #[test]
    fn latency_breakdown_arithmetic() {
        let r = record();
        assert_eq!(r.queue_ns(), 300);
        assert_eq!(r.service_ns(), 1_000);
        assert_eq!(r.sojourn_ns(), 1_800);
        assert_eq!(r.overhead_ns(), 500);
    }

    #[test]
    fn out_of_order_timestamps_saturate_to_zero() {
        let r = RequestRecord {
            id: RequestId(1),
            issued_ns: 100,
            enqueued_ns: 90,
            started_ns: 80,
            completed_ns: 70,
            client_received_ns: 60,
        };
        assert_eq!(r.queue_ns(), 0);
        assert_eq!(r.service_ns(), 0);
        assert_eq!(r.sojourn_ns(), 0);
    }

    #[test]
    fn work_profile_combination_weights_by_instructions() {
        let a = WorkProfile {
            instructions: 100,
            mem_reads: 10,
            mem_writes: 5,
            footprint_bytes: 1_000,
            locality: 1.0,
            critical_fraction: 0.0,
        };
        let b = WorkProfile {
            instructions: 300,
            mem_reads: 30,
            mem_writes: 15,
            footprint_bytes: 4_000,
            locality: 0.0,
            critical_fraction: 0.4,
        };
        let c = a.combined(&b);
        assert_eq!(c.instructions, 400);
        assert_eq!(c.mem_reads, 40);
        assert_eq!(c.mem_accesses(), 60);
        assert_eq!(c.footprint_bytes, 4_000);
        assert!((c.locality - 0.25).abs() < 1e-9);
        assert!((c.critical_fraction - 0.3).abs() < 1e-9);
    }

    #[test]
    fn combining_with_empty_profile_is_identity_on_counts() {
        let a = WorkProfile {
            instructions: 50,
            mem_reads: 5,
            mem_writes: 1,
            footprint_bytes: 64,
            locality: 0.5,
            critical_fraction: 0.1,
        };
        let c = a.combined(&WorkProfile::default());
        assert_eq!(c.instructions, 50);
        assert_eq!(c.mem_reads, 5);
        assert!((c.locality - 0.5).abs() < 1e-9);
    }
}
