//! The traffic shaper.
//!
//! The traffic shaper controls the timing characteristics of the request stream (paper
//! §IV, Fig. 1).  TailBench uses an *open-loop* design: requests are released at times
//! drawn from a Poisson process with the configured rate, independently of whether
//! earlier responses have arrived.  A *closed-loop* mode is also provided so the
//! coordinated-omission pitfall of conventional load testers (§II-B) can be reproduced
//! and quantified — it must never be used for reported results.

use crate::request::{Request, RequestId};
use std::sync::Arc;
use tailbench_workloads::interarrival::InterarrivalProcess;
use tailbench_workloads::rng::SuiteRng;

/// A precompiled open-loop arrival trace: explicit issue timestamps, typically produced
/// by the phase-trace compiler in `tailbench-scenario` (bursts, ramps, diurnal waves).
///
/// The timestamps are nanoseconds since the run epoch and must be non-decreasing; the
/// runners issue exactly these arrivals, so a trace run is open-loop by construction.
#[derive(Debug, Clone)]
pub struct LoadTrace {
    /// Arrival timestamps in nanoseconds since the run epoch, non-decreasing.
    pub times_ns: Vec<u64>,
    /// Mean offered rate over the trace, in queries per second (reported as the run's
    /// offered load).
    pub mean_qps: f64,
}

impl LoadTrace {
    /// Builds a trace from explicit timestamps, deriving the mean rate from the
    /// *actual arrival span* (`last - first`): `n` arrivals define `n - 1` interarrival
    /// gaps, so the mean offered rate is `(n - 1) / span`.  The old formula,
    /// `n / last`, implicitly anchored every trace at the epoch — a trace starting at
    /// t = 10 s under-reported its offered load by the idle lead-in, and a
    /// single-arrival trace at the epoch degenerated to 0 QPS.
    ///
    /// Degenerate cases: an empty trace offers 0 QPS; a single arrival (no observable
    /// gap) and an instantaneous burst (all timestamps equal) fall back to anchoring
    /// at the epoch — `n` arrivals over `[0, last]` — and report 0 QPS only when even
    /// that window is empty (everything at t = 0).
    ///
    /// # Panics
    ///
    /// Panics if the timestamps are not non-decreasing.
    #[must_use]
    pub fn from_times(times_ns: Vec<u64>) -> Self {
        assert!(
            times_ns.windows(2).all(|w| w[0] <= w[1]),
            "trace timestamps must be non-decreasing"
        );
        let mean_qps = match times_ns.as_slice() {
            [] => 0.0,
            [.., last] => {
                let first = times_ns[0];
                let span_ns = last - first;
                if times_ns.len() >= 2 && span_ns > 0 {
                    (times_ns.len() - 1) as f64 * 1e9 / span_ns as f64
                } else if *last > 0 {
                    times_ns.len() as f64 * 1e9 / *last as f64
                } else {
                    0.0
                }
            }
        };
        LoadTrace { times_ns, mean_qps }
    }

    /// Number of arrivals in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times_ns.len()
    }

    /// Returns `true` if the trace holds no arrivals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times_ns.is_empty()
    }
}

/// How request issue times are generated.
#[derive(Debug, Clone)]
pub enum LoadMode {
    /// Open-loop arrivals (the TailBench methodology): requests are issued on a schedule
    /// independent of response times.
    Open(InterarrivalProcess),
    /// Open-loop arrivals following a precompiled trace of explicit timestamps (the
    /// scenario engine's phased load traces).  Shares the open-loop property of
    /// [`LoadMode::Open`]; only the schedule source differs.
    Trace(Arc<LoadTrace>),
    /// Closed-loop arrivals: each client thread waits for the previous response plus an
    /// optional think time before issuing the next request.  Provided only to reproduce
    /// the coordinated-omission measurement error.
    Closed {
        /// Think time inserted between receiving a response and issuing the next
        /// request, in nanoseconds.
        think_ns: u64,
    },
}

impl LoadMode {
    /// Open-loop Poisson arrivals at `qps` queries per second.
    #[must_use]
    pub fn open_poisson(qps: f64) -> Self {
        LoadMode::Open(InterarrivalProcess::poisson(qps))
    }

    /// Open-loop arrivals following the given precompiled trace.
    #[must_use]
    pub fn trace(trace: LoadTrace) -> Self {
        LoadMode::Trace(Arc::new(trace))
    }

    /// Returns the configured offered load in QPS, if the mode defines one (closed-loop
    /// load depends on response times, so it has no fixed offered rate).
    #[must_use]
    pub fn offered_qps(&self) -> Option<f64> {
        match self {
            LoadMode::Open(p) => Some(p.qps()),
            LoadMode::Trace(t) => Some(t.mean_qps),
            LoadMode::Closed { .. } => None,
        }
    }

    /// Returns `true` for open-loop modes (Poisson and trace schedules).
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self, LoadMode::Open(_) | LoadMode::Trace(_))
    }

    /// Produces the issue schedule for an open-loop run: `count` non-decreasing arrival
    /// timestamps (ns since the run epoch).  Returns `None` for closed-loop modes, whose
    /// issue times depend on response times.
    ///
    /// Poisson schedules draw their gaps from `rng`; trace schedules are already
    /// compiled and consume no randomness.  A trace shorter than `count` yields its full
    /// length (the scenario engine sizes the run from the trace, so the paths agree).
    #[must_use]
    pub fn schedule(&self, rng: &mut SuiteRng, count: usize) -> Option<Vec<u64>> {
        match self {
            LoadMode::Open(process) => Some(process.schedule(rng, count)),
            LoadMode::Trace(trace) => Some(trace.times_ns.iter().copied().take(count).collect()),
            LoadMode::Closed { .. } => None,
        }
    }
}

/// Produces the issue schedule for an open-loop run: a list of `(issue_ns, request)`
/// pairs with issue times *non-decreasing* from the run epoch.  Ties are legal — a
/// burst trace may schedule several arrivals at the same nanosecond — and every
/// consumer (the pacing loops, [`TrafficShaper::split_round_robin`], the simulators)
/// preserves arrival order among tied timestamps.
///
/// The traffic shaper pre-draws both the interarrival gaps and the request payloads so
/// that the issuing thread does no generation work on the critical path — generation cost
/// must not perturb the measured arrival process.
#[derive(Debug)]
pub struct TrafficShaper {
    schedule: Vec<Request>,
}

impl TrafficShaper {
    /// Builds a schedule of `count` requests using the given arrival process and request
    /// payload source.
    pub fn build<F>(
        process: &InterarrivalProcess,
        rng: &mut SuiteRng,
        count: usize,
        first_id: u64,
        next_payload: F,
    ) -> Self
    where
        F: FnMut() -> Vec<u8>,
    {
        Self::from_times(process.schedule(rng, count), first_id, next_payload)
    }

    /// Builds a schedule from explicit arrival timestamps (the trace path): request `i`
    /// is issued at `times[i]` with id `first_id + i`.  The payload closure is invoked
    /// once per request in arrival order, so sequenced factories (e.g. the scenario
    /// engine's class multiplexer) see requests in id order.
    pub fn from_times<F>(times: Vec<u64>, first_id: u64, mut next_payload: F) -> Self
    where
        F: FnMut() -> Vec<u8>,
    {
        let schedule = times
            .into_iter()
            .enumerate()
            .map(|(i, issued_ns)| Request {
                id: RequestId(first_id + i as u64),
                payload: next_payload(),
                issued_ns,
            })
            .collect();
        TrafficShaper { schedule }
    }

    /// The scheduled requests, ordered by issue time.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.schedule
    }

    /// Consumes the shaper, returning the schedule.
    #[must_use]
    pub fn into_requests(self) -> Vec<Request> {
        self.schedule
    }

    /// Consumes the shaper and deals the schedule round-robin across `ways` client
    /// connections.  Each sub-schedule stays ordered by issue time, so per-connection
    /// pacing preserves the global open-loop arrival process.
    #[must_use]
    pub fn split_round_robin(self, ways: usize) -> Vec<Vec<Request>> {
        let ways = ways.max(1);
        let mut split: Vec<Vec<Request>> = (0..ways).map(|_| Vec::new()).collect();
        for (i, request) in self.schedule.into_iter().enumerate() {
            split[i % ways].push(request);
        }
        split
    }

    /// Number of scheduled requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Returns `true` if the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The total span of the schedule in nanoseconds (issue time of the last request).
    #[must_use]
    pub fn span_ns(&self) -> u64 {
        self.schedule.last().map_or(0, |r| r.issued_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailbench_workloads::rng::seeded_rng;

    #[test]
    fn open_mode_reports_offered_qps() {
        let m = LoadMode::open_poisson(1234.0);
        assert!(m.is_open());
        assert!((m.offered_qps().unwrap() - 1234.0).abs() < 1e-6);
        let c = LoadMode::Closed { think_ns: 0 };
        assert!(!c.is_open());
        assert!(c.offered_qps().is_none());
    }

    #[test]
    fn shaper_builds_monotonic_schedule_with_unique_ids() {
        let process = InterarrivalProcess::poisson(10_000.0);
        let mut rng = seeded_rng(1, 0);
        let mut n = 0u8;
        let shaper = TrafficShaper::build(&process, &mut rng, 500, 100, || {
            n = n.wrapping_add(1);
            vec![n]
        });
        assert_eq!(shaper.len(), 500);
        assert!(!shaper.is_empty());
        let reqs = shaper.requests();
        assert!(reqs.windows(2).all(|w| w[0].issued_ns <= w[1].issued_ns));
        assert_eq!(reqs[0].id, RequestId(100));
        assert_eq!(reqs[499].id, RequestId(599));
        assert!(shaper.span_ns() > 0);
    }

    #[test]
    fn split_round_robin_preserves_order_and_coverage() {
        let process = InterarrivalProcess::poisson(10_000.0);
        let mut rng = seeded_rng(3, 0);
        let shaper = TrafficShaper::build(&process, &mut rng, 100, 0, Vec::new);
        let split = shaper.split_round_robin(3);
        assert_eq!(split.len(), 3);
        assert_eq!(split.iter().map(Vec::len).sum::<usize>(), 100);
        for (c, sub) in split.iter().enumerate() {
            assert!(sub.windows(2).all(|w| w[0].issued_ns <= w[1].issued_ns));
            for (i, r) in sub.iter().enumerate() {
                assert_eq!(r.id.0 as usize, i * 3 + c);
            }
        }
    }

    #[test]
    fn trace_mode_is_open_and_reports_mean_qps() {
        // 1000 arrivals spanning 1 s => 1000 QPS mean.
        let times: Vec<u64> = (1..=1000u64).map(|i| i * 1_000_000).collect();
        let m = LoadMode::trace(LoadTrace::from_times(times));
        assert!(m.is_open());
        assert!((m.offered_qps().unwrap() - 1000.0).abs() < 1.0);
        let mut rng = seeded_rng(1, 0);
        let sched = m.schedule(&mut rng, 10).unwrap();
        assert_eq!(sched.len(), 10);
        assert_eq!(sched[0], 1_000_000);
        // A trace shorter than the requested count yields its full length.
        let all = m.schedule(&mut rng, 5_000).unwrap();
        assert_eq!(all.len(), 1000);
        assert!(LoadMode::Closed { think_ns: 0 }
            .schedule(&mut rng, 10)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn trace_rejects_time_travel() {
        let _ = LoadTrace::from_times(vec![10, 5]);
    }

    #[test]
    fn offset_trace_reports_the_rate_over_its_arrival_span() {
        // 1000 arrivals at 1 ms spacing, but starting at t = 10 s: the offered load is
        // still 1000 QPS.  The old len/last formula reported ~91 QPS here.
        let times: Vec<u64> = (0..1000u64)
            .map(|i| 10_000_000_000 + i * 1_000_000)
            .collect();
        let trace = LoadTrace::from_times(times);
        assert!(
            (trace.mean_qps - 1000.0).abs() < 2.0,
            "offset trace mean_qps = {}",
            trace.mean_qps
        );
    }

    #[test]
    fn degenerate_traces_report_sane_rates() {
        // Empty: no offered load.
        assert_eq!(LoadTrace::from_times(Vec::new()).mean_qps, 0.0);
        // Single arrival at 1 s: one request over [0, 1 s] = 1 QPS, not 0.
        let single = LoadTrace::from_times(vec![1_000_000_000]);
        assert!((single.mean_qps - 1.0).abs() < 1e-9, "{}", single.mean_qps);
        // Single arrival at the epoch: no observable window at all.
        assert_eq!(LoadTrace::from_times(vec![0]).mean_qps, 0.0);
        // An instantaneous burst (all ties) anchors at the epoch: 5 requests in 1 ms.
        let burst = LoadTrace::from_times(vec![1_000_000; 5]);
        assert!(
            (burst.mean_qps - 5_000.0).abs() < 1e-6,
            "{}",
            burst.mean_qps
        );
    }

    #[test]
    fn tied_timestamps_survive_split_round_robin_in_order() {
        // A burst trace with ties: the shaper accepts non-decreasing (not strictly
        // increasing) schedules, and the round-robin split keeps every sub-schedule
        // non-decreasing with ids preserved in arrival order.
        let times = vec![100, 100, 100, 200, 200, 300, 300, 300, 300];
        let n = times.len();
        let shaper = TrafficShaper::from_times(times, 0, Vec::new);
        assert_eq!(shaper.len(), n);
        assert!(shaper
            .requests()
            .windows(2)
            .all(|w| w[0].issued_ns <= w[1].issued_ns));
        let split = shaper.split_round_robin(2);
        assert_eq!(split.iter().map(Vec::len).sum::<usize>(), n);
        for (c, sub) in split.iter().enumerate() {
            assert!(
                sub.windows(2).all(|w| w[0].issued_ns <= w[1].issued_ns),
                "connection {c} schedule must stay non-decreasing"
            );
            for (i, r) in sub.iter().enumerate() {
                assert_eq!(r.id.0 as usize, i * 2 + c, "ids keep arrival order");
            }
        }
    }

    #[test]
    fn schedule_span_tracks_rate() {
        let mut rng = seeded_rng(2, 0);
        let fast = TrafficShaper::build(
            &InterarrivalProcess::poisson(100_000.0),
            &mut rng,
            1000,
            0,
            Vec::new,
        );
        let mut rng = seeded_rng(2, 0);
        let slow = TrafficShaper::build(
            &InterarrivalProcess::poisson(1_000.0),
            &mut rng,
            1000,
            0,
            Vec::new,
        );
        assert!(slow.span_ns() > fast.span_ns() * 10);
    }
}
