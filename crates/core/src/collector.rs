//! The statistics collector.
//!
//! The collector aggregates per-request latency records into sojourn, queuing and
//! service-time distributions (paper Fig. 1, §IV-C).  The real-time runners no longer
//! funnel every completion through one channel into a single collector thread — that
//! send, and the collector thread's cache traffic, sat on the measurement hot path.
//! Instead every worker / client-connection thread owns its own *collector shard* (a
//! plain [`StatsCollector`]) and records locally; the shards are merged with
//! [`StatsCollector::merge`] when the run tears down.  HDR histograms are
//! order-independent, and the histogram crate's `summary merge == single recording`
//! property test licenses the rearrangement: a merged set of shards is statistically
//! identical to one collector that saw every record.  The discrete-event simulation
//! runner records inline on its single thread, exactly as before.

use crate::report::LatencyStats;
use crate::request::RequestRecord;
use std::sync::Arc;
use tailbench_histogram::LatencySummary;

/// Per-request class and phase tags for a run, indexed by request id.
///
/// The scenario engine compiles its multi-class, phased schedule into one id-ordered
/// request stream; this table records, for each id, which client class issued the
/// request and which load phase it arrived in.  Collectors use it to maintain per-class
/// and per-phase sojourn distributions so a batch tenant's impact on an interactive
/// tenant's p99 — or a burst phase's tail versus the steady phase's — is a first-class
/// result rather than a post-processing step.  Requests beyond the table (or runs
/// without tags) fall into class/phase 0.
#[derive(Debug, Clone, Default)]
pub struct RequestTags {
    class_names: Vec<String>,
    phase_names: Vec<String>,
    class_of: Vec<u16>,
    phase_of: Vec<u16>,
}

impl RequestTags {
    /// Builds the tag table.  `class_of[id]` / `phase_of[id]` give request `id`'s class
    /// and phase as indexes into the name lists.
    ///
    /// # Panics
    ///
    /// Panics if any tag indexes past its name list.
    #[must_use]
    pub fn new(
        class_names: Vec<String>,
        phase_names: Vec<String>,
        class_of: Vec<u16>,
        phase_of: Vec<u16>,
    ) -> Self {
        assert!(
            class_of
                .iter()
                .all(|&c| (c as usize) < class_names.len().max(1)),
            "class tag out of range"
        );
        assert!(
            phase_of
                .iter()
                .all(|&p| (p as usize) < phase_names.len().max(1)),
            "phase tag out of range"
        );
        RequestTags {
            class_names,
            phase_names,
            class_of,
            phase_of,
        }
    }

    /// The class of request `id` (0 when untagged).
    #[must_use]
    pub fn class_of(&self, id: u64) -> u16 {
        self.class_of.get(id as usize).copied().unwrap_or(0)
    }

    /// The phase of request `id` (0 when untagged).
    #[must_use]
    pub fn phase_of(&self, id: u64) -> u16 {
        self.phase_of.get(id as usize).copied().unwrap_or(0)
    }

    /// Class names, indexed by class.
    #[must_use]
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Phase names, indexed by phase.
    #[must_use]
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }
}

/// Aggregated latency statistics of one measurement run.
#[derive(Debug, Clone)]
pub struct StatsCollector {
    /// Records with `id.0 < warmup_count` are counted as warmup and excluded from the
    /// reported distributions.
    warmup_count: u64,
    sojourn: LatencySummary,
    service: LatencySummary,
    queue: LatencySummary,
    overhead: LatencySummary,
    tags: Option<Arc<RequestTags>>,
    per_class: Vec<LatencySummary>,
    per_phase: Vec<LatencySummary>,
    measured: u64,
    warmup_seen: u64,
    first_issue_ns: u64,
    last_completion_ns: u64,
}

impl StatsCollector {
    /// Creates a collector that treats the first `warmup_count` request ids as warmup.
    #[must_use]
    pub fn new(warmup_count: u64) -> Self {
        StatsCollector {
            warmup_count,
            sojourn: LatencySummary::new(),
            service: LatencySummary::new(),
            queue: LatencySummary::new(),
            overhead: LatencySummary::new(),
            tags: None,
            per_class: Vec::new(),
            per_phase: Vec::new(),
            measured: 0,
            warmup_seen: 0,
            first_issue_ns: u64::MAX,
            last_completion_ns: 0,
        }
    }

    /// Attaches per-request class/phase tags; the collector then also maintains one
    /// sojourn distribution per class and per phase.
    #[must_use]
    pub fn with_tags(mut self, tags: Option<Arc<RequestTags>>) -> Self {
        if let Some(t) = &tags {
            self.per_class = (0..t.class_names().len())
                .map(|_| LatencySummary::new())
                .collect();
            self.per_phase = (0..t.phase_names().len())
                .map(|_| LatencySummary::new())
                .collect();
        }
        self.tags = tags;
        self
    }

    /// Records one finished request.
    pub fn record(&mut self, r: &RequestRecord) {
        if r.id.0 < self.warmup_count {
            self.warmup_seen += 1;
            return;
        }
        self.sojourn.record(r.sojourn_ns());
        self.service.record(r.service_ns());
        self.queue.record(r.queue_ns());
        self.overhead.record(r.overhead_ns());
        if let Some(tags) = &self.tags {
            let class = tags.class_of(r.id.0) as usize;
            if let Some(summary) = self.per_class.get_mut(class) {
                summary.record(r.sojourn_ns());
            }
            let phase = tags.phase_of(r.id.0) as usize;
            if let Some(summary) = self.per_phase.get_mut(phase) {
                summary.record(r.sojourn_ns());
            }
        }
        self.measured += 1;
        self.first_issue_ns = self.first_issue_ns.min(r.issued_ns);
        self.last_completion_ns = self.last_completion_ns.max(r.client_received_ns);
    }

    /// Merges another collector shard into this one.
    ///
    /// Shards must have been created with the same warmup count and tag table (the
    /// runners clone one prototype per thread, so this holds by construction).  The
    /// merge is order-independent: histograms, counters, and the min/max interval
    /// bounds all commute, so `merge(a, b)` equals a single collector that recorded
    /// both shards' streams — the property the sharded-collector stress test pins.
    pub fn merge(&mut self, other: &StatsCollector) {
        debug_assert_eq!(
            self.warmup_count, other.warmup_count,
            "collector shards must share a warmup count"
        );
        self.sojourn.merge(&other.sojourn);
        self.service.merge(&other.service);
        self.queue.merge(&other.queue);
        self.overhead.merge(&other.overhead);
        for (mine, theirs) in self.per_class.iter_mut().zip(&other.per_class) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.per_phase.iter_mut().zip(&other.per_phase) {
            mine.merge(theirs);
        }
        self.measured += other.measured;
        self.warmup_seen += other.warmup_seen;
        self.first_issue_ns = self.first_issue_ns.min(other.first_issue_ns);
        self.last_completion_ns = self.last_completion_ns.max(other.last_completion_ns);
    }

    /// Number of measured (non-warmup) requests recorded.
    #[must_use]
    pub fn measured(&self) -> u64 {
        self.measured
    }

    /// Number of warmup requests seen.
    #[must_use]
    pub fn warmup_seen(&self) -> u64 {
        self.warmup_seen
    }

    /// Achieved throughput over the measured interval, in queries per second.
    #[must_use]
    pub fn achieved_qps(&self) -> f64 {
        if self.measured == 0 || self.last_completion_ns <= self.first_issue_ns {
            return 0.0;
        }
        self.measured as f64 * 1e9 / (self.last_completion_ns - self.first_issue_ns) as f64
    }

    /// Wall-clock span of the measured interval in nanoseconds.
    #[must_use]
    pub fn span_ns(&self) -> u64 {
        self.last_completion_ns.saturating_sub(self.first_issue_ns)
    }

    /// Sojourn (end-to-end) latency statistics.
    #[must_use]
    pub fn sojourn_stats(&self) -> LatencyStats {
        LatencyStats::from_summary(&self.sojourn)
    }

    /// Service-time statistics.
    #[must_use]
    pub fn service_stats(&self) -> LatencyStats {
        LatencyStats::from_summary(&self.service)
    }

    /// Queuing-time statistics.
    #[must_use]
    pub fn queue_stats(&self) -> LatencyStats {
        LatencyStats::from_summary(&self.queue)
    }

    /// Transport/harness overhead statistics.
    #[must_use]
    pub fn overhead_stats(&self) -> LatencyStats {
        LatencyStats::from_summary(&self.overhead)
    }

    /// The full sojourn-time distribution (for CDF plots).
    #[must_use]
    pub fn sojourn_summary(&self) -> &LatencySummary {
        &self.sojourn
    }

    /// The full service-time distribution (for CDF plots, e.g. paper Fig. 2).
    #[must_use]
    pub fn service_summary(&self) -> &LatencySummary {
        &self.service
    }

    /// Per-class sojourn statistics as `(class name, stats)` rows; empty without tags.
    #[must_use]
    pub fn class_breakdown(&self) -> Vec<(String, LatencyStats)> {
        self.breakdown(&self.per_class, RequestTags::class_names)
    }

    /// Per-phase sojourn statistics as `(phase name, stats)` rows; empty without tags.
    #[must_use]
    pub fn phase_breakdown(&self) -> Vec<(String, LatencyStats)> {
        self.breakdown(&self.per_phase, RequestTags::phase_names)
    }

    fn breakdown(
        &self,
        summaries: &[LatencySummary],
        names: fn(&RequestTags) -> &[String],
    ) -> Vec<(String, LatencyStats)> {
        match &self.tags {
            None => Vec::new(),
            Some(tags) => names(tags)
                .iter()
                .zip(summaries)
                .map(|(name, summary)| (name.clone(), LatencyStats::from_summary(summary)))
                .collect(),
        }
    }
}

/// A merge in progress for one fanned-out request.
#[derive(Debug, Clone, Copy)]
struct PendingFanout {
    expected: usize,
    seen: usize,
    slowest: RequestRecord,
}

/// The cross-shard statistics collector of a cluster run.
///
/// Every completed request *leg* (one request × one shard) is recorded into its shard's
/// own [`StatsCollector`]; when the last leg of a request lands, the record of the
/// slowest leg is additionally recorded end-to-end (last-response-wins — the root of a
/// partition-aggregate query can only answer once its slowest leaf has responded).
/// Reporting both distributions makes the fan-out tail amplification
/// (`p99_cluster / p99_shard`) a first-class result.
///
/// Like [`StatsCollector`], cluster collectors shard: each receiver/forwarder thread
/// owns a partial collector seeing only its instance's legs, and the partials combine
/// with [`ClusterCollector::merge`] at run end — including in-flight fan-out merges,
/// whose leg counts and slowest-leg records compose across shards.
#[derive(Debug, Clone)]
pub struct ClusterCollector {
    cluster: StatsCollector,
    per_shard: Vec<StatsCollector>,
    pending: std::collections::BTreeMap<u64, PendingFanout>,
}

impl ClusterCollector {
    /// Creates a collector for `shards` shards with the given warmup request count.
    #[must_use]
    pub fn new(shards: usize, warmup_count: u64) -> Self {
        ClusterCollector {
            cluster: StatsCollector::new(warmup_count),
            per_shard: (0..shards.max(1))
                .map(|_| StatsCollector::new(warmup_count))
                .collect(),
            pending: std::collections::BTreeMap::new(),
        }
    }

    /// Attaches per-request tags to the *end-to-end* collector, so cluster runs report
    /// per-class and per-phase sojourn like single-server runs (per-shard collectors
    /// stay untagged: a shard serves legs of every class).
    #[must_use]
    pub fn with_tags(mut self, tags: Option<Arc<RequestTags>>) -> Self {
        self.cluster = self.cluster.with_tags(tags);
        self
    }

    /// Records one finished leg of a request.
    ///
    /// `expected_legs` is the request's fan-out width (1 for single-shard requests, the
    /// shard count for broadcast requests).  When the final leg lands, the slowest leg's
    /// record is recorded into the end-to-end distribution and returned.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn record_leg(
        &mut self,
        shard: usize,
        record: RequestRecord,
        expected_legs: usize,
    ) -> Option<RequestRecord> {
        self.per_shard[shard].record(&record);
        if expected_legs <= 1 {
            self.cluster.record(&record);
            return Some(record);
        }
        let entry = self.pending.entry(record.id.0).or_insert(PendingFanout {
            expected: expected_legs,
            seen: 0,
            slowest: record,
        });
        if record.client_received_ns > entry.slowest.client_received_ns {
            entry.slowest = record;
        }
        entry.seen += 1;
        if entry.seen >= entry.expected {
            let slowest = entry.slowest;
            self.pending.remove(&record.id.0);
            self.cluster.record(&slowest);
            Some(slowest)
        } else {
            None
        }
    }

    /// Merges a partial collector (another receiver thread's view of the run) into
    /// this one.  Per-shard and end-to-end histograms combine directly; fan-out merges
    /// still in flight combine leg counts and slowest-leg records, completing — and
    /// recording end-to-end — any request whose legs were split across the partials.
    ///
    /// # Panics
    ///
    /// Panics if the collectors were created with different shard counts.
    pub fn merge(&mut self, other: ClusterCollector) {
        assert_eq!(
            self.per_shard.len(),
            other.per_shard.len(),
            "cluster collector partials must share a shard count"
        );
        self.cluster.merge(&other.cluster);
        for (mine, theirs) in self.per_shard.iter_mut().zip(&other.per_shard) {
            mine.merge(theirs);
        }
        for (id, partial) in other.pending {
            let completed = match self.pending.get_mut(&id) {
                Some(entry) => {
                    entry.seen += partial.seen;
                    if partial.slowest.client_received_ns > entry.slowest.client_received_ns {
                        entry.slowest = partial.slowest;
                    }
                    (entry.seen >= entry.expected).then_some(entry.slowest)
                }
                None => {
                    self.pending.insert(id, partial);
                    None
                }
            };
            if let Some(slowest) = completed {
                self.pending.remove(&id);
                self.cluster.record(&slowest);
            }
        }
    }

    /// The end-to-end (cluster) statistics.
    #[must_use]
    pub fn cluster_stats(&self) -> &StatsCollector {
        &self.cluster
    }

    /// Per-shard statistics, indexed by shard.
    #[must_use]
    pub fn shard_stats(&self) -> &[StatsCollector] {
        &self.per_shard
    }

    /// Number of requests whose fan-out merge is still incomplete (non-zero only if a
    /// run was cut short).
    #[must_use]
    pub fn unmerged(&self) -> usize {
        self.pending.len()
    }

    /// The union of all shards' sojourn distributions (every leg, regardless of which
    /// shard served it).  This is the "per-shard" view used for tail-amplification
    /// comparisons, built through the histogram merge path.
    #[must_use]
    pub fn merged_shard_sojourn(&self) -> LatencySummary {
        let mut merged = LatencySummary::new();
        for shard in &self.per_shard {
            merged.merge(shard.sojourn_summary());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;

    fn record(id: u64, issued: u64, service: u64) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            issued_ns: issued,
            enqueued_ns: issued + 10,
            started_ns: issued + 50,
            completed_ns: issued + 50 + service,
            client_received_ns: issued + 60 + service,
        }
    }

    #[test]
    fn warmup_records_are_excluded() {
        let mut c = StatsCollector::new(5);
        for i in 0..10u64 {
            c.record(&record(i, i * 1_000, 500));
        }
        assert_eq!(c.measured(), 5);
        assert_eq!(c.warmup_seen(), 5);
    }

    #[test]
    fn stats_reflect_recorded_values() {
        let mut c = StatsCollector::new(0);
        c.record(&record(0, 0, 1_000));
        c.record(&record(1, 10_000, 2_000));
        let service = c.service_stats();
        assert_eq!(service.max_ns, 2_000);
        assert_eq!(service.min_ns, 1_000);
        let sojourn = c.sojourn_stats();
        assert!(sojourn.mean_ns > 1_000.0);
        assert_eq!(c.queue_stats().max_ns, 40);
    }

    #[test]
    fn achieved_qps_uses_measured_span() {
        let mut c = StatsCollector::new(0);
        // 100 requests spread over ~0.1 s => ~1000 QPS.
        for i in 0..100u64 {
            c.record(&record(i, i * 1_000_000, 100_000));
        }
        let qps = c.achieved_qps();
        assert!((qps - 1_000.0).abs() / 1_000.0 < 0.05, "qps = {qps}");
    }

    #[test]
    fn empty_collector_reports_zero_qps() {
        let c = StatsCollector::new(0);
        assert_eq!(c.achieved_qps(), 0.0);
        assert_eq!(c.measured(), 0);
        assert_eq!(c.span_ns(), 0);
    }

    fn record_at(id: u64, issued: u64, received: u64) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            issued_ns: issued,
            enqueued_ns: issued,
            started_ns: issued,
            completed_ns: received,
            client_received_ns: received,
        }
    }

    #[test]
    fn cluster_collector_merges_on_last_response() {
        let mut c = ClusterCollector::new(4, 0);
        // One broadcast request: three legs complete at 100/300/200 — the merge must
        // yield the slowest leg (300) once, not three cluster records.
        assert!(c.record_leg(0, record_at(0, 0, 100), 3).is_none());
        assert!(c.record_leg(1, record_at(0, 0, 300), 3).is_none());
        let merged = c.record_leg(2, record_at(0, 0, 200), 3).unwrap();
        assert_eq!(merged.client_received_ns, 300);
        assert_eq!(c.cluster_stats().measured(), 1);
        assert_eq!(c.cluster_stats().sojourn_stats().max_ns, 300);
        assert_eq!(c.shard_stats()[0].measured(), 1);
        assert_eq!(c.shard_stats()[3].measured(), 0);
        assert_eq!(c.unmerged(), 0);
    }

    #[test]
    fn cluster_collector_single_shard_records_directly() {
        let mut c = ClusterCollector::new(2, 0);
        let merged = c.record_leg(1, record_at(7, 10, 60), 1).unwrap();
        assert_eq!(merged.sojourn_ns(), 50);
        assert_eq!(c.cluster_stats().measured(), 1);
        assert_eq!(c.shard_stats()[1].measured(), 1);
    }

    #[test]
    fn merged_shard_sojourn_covers_every_leg() {
        let mut c = ClusterCollector::new(2, 0);
        let _ = c.record_leg(0, record_at(0, 0, 100), 2);
        let _ = c.record_leg(1, record_at(0, 0, 400), 2);
        let _ = c.record_leg(0, record_at(1, 0, 200), 2);
        let _ = c.record_leg(1, record_at(1, 0, 300), 2);
        let merged = c.merged_shard_sojourn();
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.max(), 400);
        // The cluster distribution keeps only the slowest leg per request.
        assert_eq!(c.cluster_stats().measured(), 2);
        assert_eq!(c.cluster_stats().sojourn_stats().min_ns, 300);
    }

    #[test]
    fn partial_cluster_collectors_merge_split_fanouts() {
        // Two receiver threads each saw one leg of every broadcast request: neither
        // partial can complete a fan-out merge alone, but merging the partials must
        // complete all of them with the slowest leg winning.
        let mut a = ClusterCollector::new(2, 0);
        let mut b = ClusterCollector::new(2, 0);
        for i in 0..10u64 {
            assert!(a.record_leg(0, record_at(i, 0, 100), 2).is_none());
            assert!(b.record_leg(1, record_at(i, 0, 200), 2).is_none());
        }
        assert_eq!(a.unmerged(), 10);
        a.merge(b);
        assert_eq!(a.unmerged(), 0);
        assert_eq!(a.cluster_stats().measured(), 10);
        assert_eq!(a.shard_stats()[0].measured(), 10);
        assert_eq!(a.shard_stats()[1].measured(), 10);
        assert_eq!(a.cluster_stats().sojourn_stats().min_ns, 200);
    }

    #[test]
    fn merged_partials_equal_a_single_collector() {
        // The same 40 legs recorded (a) through one collector and (b) split across
        // three partials merged afterwards must produce identical statistics.
        let legs: Vec<(usize, RequestRecord)> = (0..20u64)
            .flat_map(|i| {
                vec![
                    (0usize, record_at(i, i * 10, i * 10 + 100 + i)),
                    (1usize, record_at(i, i * 10, i * 10 + 300 + 2 * i)),
                ]
            })
            .collect();
        let mut single = ClusterCollector::new(2, 3);
        for (shard, record) in &legs {
            let _ = single.record_leg(*shard, *record, 2);
        }
        let mut partials: Vec<ClusterCollector> =
            (0..3).map(|_| ClusterCollector::new(2, 3)).collect();
        for (i, (shard, record)) in legs.iter().enumerate() {
            let _ = partials[i % 3].record_leg(*shard, *record, 2);
        }
        let mut merged = partials.remove(0);
        for partial in partials {
            merged.merge(partial);
        }
        assert_eq!(merged.unmerged(), single.unmerged());
        assert_eq!(
            merged.cluster_stats().measured(),
            single.cluster_stats().measured()
        );
        assert_eq!(
            merged.cluster_stats().sojourn_stats(),
            single.cluster_stats().sojourn_stats()
        );
        for shard in 0..2 {
            assert_eq!(
                merged.shard_stats()[shard].sojourn_stats(),
                single.shard_stats()[shard].sojourn_stats()
            );
        }
        assert_eq!(
            LatencyStats::from_summary(&merged.merged_shard_sojourn()),
            LatencyStats::from_summary(&single.merged_shard_sojourn())
        );
    }

    #[test]
    fn tagged_collector_splits_classes_and_phases() {
        // 10 requests: even ids are class 0 ("fg"), odd ids class 1 ("bg"); first five
        // are phase 0, the rest phase 1.  Background requests are 10x slower.
        let tags = Arc::new(RequestTags::new(
            vec!["fg".into(), "bg".into()],
            vec!["steady".into(), "burst".into()],
            (0..10).map(|i| (i % 2) as u16).collect(),
            (0..10).map(|i| u16::from(i >= 5)).collect(),
        ));
        let mut c = StatsCollector::new(0).with_tags(Some(Arc::clone(&tags)));
        for i in 0..10u64 {
            let service = if i % 2 == 0 { 1_000 } else { 10_000 };
            c.record(&record(i, i * 1_000, service));
        }
        let classes = c.class_breakdown();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].0, "fg");
        assert_eq!(classes[0].1.count, 5);
        assert_eq!(classes[1].1.count, 5);
        assert!(classes[1].1.p50_ns > classes[0].1.p50_ns * 5);
        let phases = c.phase_breakdown();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].1.count + phases[1].1.count, 10);
        // Untagged collectors report no breakdowns.
        assert!(StatsCollector::new(0).class_breakdown().is_empty());
        // Ids beyond the table fall into class/phase 0 instead of panicking.
        c.record(&record(99, 0, 1));
        assert_eq!(c.class_breakdown()[0].1.count, 6);
    }

    #[test]
    fn shard_merge_equals_single_recording() {
        // Record a deterministic stream into one collector and, interleaved, into four
        // shards; the merged shards must be statistically identical (the histogram
        // crate's merge proptest licenses this, pinned here at the collector level).
        let tags = Arc::new(RequestTags::new(
            vec!["fg".into(), "bg".into()],
            vec!["steady".into()],
            (0..200).map(|i| (i % 2) as u16).collect(),
            vec![0; 200],
        ));
        let mut single = StatsCollector::new(10).with_tags(Some(Arc::clone(&tags)));
        let mut shards: Vec<StatsCollector> = (0..4)
            .map(|_| StatsCollector::new(10).with_tags(Some(Arc::clone(&tags))))
            .collect();
        for i in 0..200u64 {
            let r = record(i, i * 1_000, 100 + (i * 37) % 5_000);
            single.record(&r);
            shards[(i % 4) as usize].record(&r);
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.measured(), single.measured());
        assert_eq!(merged.warmup_seen(), single.warmup_seen());
        assert_eq!(merged.span_ns(), single.span_ns());
        assert_eq!(merged.sojourn_stats(), single.sojourn_stats());
        assert_eq!(merged.service_stats(), single.service_stats());
        assert_eq!(merged.queue_stats(), single.queue_stats());
        assert_eq!(merged.class_breakdown(), single.class_breakdown());
        assert_eq!(merged.phase_breakdown(), single.phase_breakdown());
        assert!((merged.achieved_qps() - single.achieved_qps()).abs() < 1e-9);
    }
}
