//! Wire protocol used by the loopback and networked configurations.
//!
//! Requests and responses are length-prefixed binary frames carrying the request id, the
//! client's issue timestamp, and (on the response path) the server-side queue and service
//! timestamps, so the client can assemble a complete
//! [`RequestRecord`](crate::request::RequestRecord) without clock synchronization issues
//! (both ends share the run clock because they live on the same machine, exactly as in
//! the paper's loopback configuration).

use crate::pool::BufferPool;
use crate::queue::ServerCompletion;
use crate::request::{Request, RequestId};
use std::io::{self, Read, Write};

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Request identifier being answered.
    pub id: RequestId,
    /// Client issue timestamp echoed back by the server.
    pub issued_ns: u64,
    /// Server-side enqueue timestamp.
    pub enqueued_ns: u64,
    /// Server-side service start timestamp.
    pub started_ns: u64,
    /// Server-side completion timestamp.
    pub completed_ns: u64,
    /// Response payload.
    pub payload: Vec<u8>,
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<Option<u32>> {
    let mut buf = [0u8; 4];
    match r.read_exact(&mut buf) {
        Ok(()) => Ok(Some(u32::from_le_bytes(buf))),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a request frame.
///
/// # Errors
///
/// Propagates any I/O error from the underlying stream.
pub fn write_request(w: &mut impl Write, request: &Request) -> io::Result<()> {
    write_u32(w, request.payload.len() as u32)?;
    write_u64(w, request.id.0)?;
    write_u64(w, request.issued_ns)?;
    w.write_all(&request.payload)?;
    w.flush()
}

/// Reads `len` payload bytes into `buf` (cleared and resized first).
fn read_payload(r: &mut impl Read, len: usize, buf: &mut Vec<u8>) -> io::Result<()> {
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)
}

/// Reads a request frame; returns `Ok(None)` on a clean end-of-stream.
///
/// # Errors
///
/// Propagates any I/O error from the underlying stream.
pub fn read_request(r: &mut impl Read) -> io::Result<Option<Request>> {
    let Some(len) = read_u32(r)? else {
        return Ok(None);
    };
    let id = read_u64(r)?;
    let issued_ns = read_u64(r)?;
    let mut payload = Vec::new();
    read_payload(r, len as usize, &mut payload)?;
    Ok(Some(Request {
        id: RequestId(id),
        payload,
        issued_ns,
    }))
}

/// Reads a request frame into a pooled payload buffer — the zero-alloc server hot
/// path: workers recycle the payload back into the same pool after handling, so a
/// steady-state connection performs no per-request payload allocations.
///
/// # Errors
///
/// Propagates any I/O error from the underlying stream.
pub fn read_request_pooled(r: &mut impl Read, pool: &BufferPool) -> io::Result<Option<Request>> {
    let Some(len) = read_u32(r)? else {
        return Ok(None);
    };
    let id = read_u64(r)?;
    let issued_ns = read_u64(r)?;
    let mut payload = pool.take(len as usize);
    read_payload(r, len as usize, &mut payload)?;
    Ok(Some(Request {
        id: RequestId(id),
        payload,
        issued_ns,
    }))
}

/// Writes a response frame from a server-side completion.
///
/// # Errors
///
/// Propagates any I/O error from the underlying stream.
pub fn write_response(w: &mut impl Write, completion: &ServerCompletion) -> io::Result<()> {
    write_u32(w, completion.response_payload.len() as u32)?;
    write_u64(w, completion.id.0)?;
    write_u64(w, completion.issued_ns)?;
    write_u64(w, completion.enqueued_ns)?;
    write_u64(w, completion.started_ns)?;
    write_u64(w, completion.completed_ns)?;
    w.write_all(&completion.response_payload)?;
    w.flush()
}

/// The timing header of a response frame, without its payload — what the client-side
/// receiver actually needs to assemble a latency record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHeader {
    /// Request identifier being answered.
    pub id: RequestId,
    /// Client issue timestamp echoed back by the server.
    pub issued_ns: u64,
    /// Server-side enqueue timestamp.
    pub enqueued_ns: u64,
    /// Server-side service start timestamp.
    pub started_ns: u64,
    /// Server-side completion timestamp.
    pub completed_ns: u64,
}

/// Reads a response frame's header, consuming the payload into `scratch` (a reusable
/// buffer; its previous contents are discarded).  Receiver threads reuse one scratch
/// buffer per connection, so decoding a response allocates nothing in steady state.
///
/// # Errors
///
/// Propagates any I/O error from the underlying stream.
pub fn read_response_header(
    r: &mut impl Read,
    scratch: &mut Vec<u8>,
) -> io::Result<Option<ResponseHeader>> {
    let Some(len) = read_u32(r)? else {
        return Ok(None);
    };
    let id = read_u64(r)?;
    let issued_ns = read_u64(r)?;
    let enqueued_ns = read_u64(r)?;
    let started_ns = read_u64(r)?;
    let completed_ns = read_u64(r)?;
    read_payload(r, len as usize, scratch)?;
    Ok(Some(ResponseHeader {
        id: RequestId(id),
        issued_ns,
        enqueued_ns,
        started_ns,
        completed_ns,
    }))
}

/// Reads a response frame; returns `Ok(None)` on a clean end-of-stream.
///
/// # Errors
///
/// Propagates any I/O error from the underlying stream.
pub fn read_response(r: &mut impl Read) -> io::Result<Option<ResponseFrame>> {
    let mut payload = Vec::new();
    let Some(header) = read_response_header(r, &mut payload)? else {
        return Ok(None);
    };
    Ok(Some(ResponseFrame {
        id: header.id,
        issued_ns: header.issued_ns,
        enqueued_ns: header.enqueued_ns,
        started_ns: header.started_ns,
        completed_ns: header.completed_ns,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::WorkProfile;
    use std::io::Cursor;

    #[test]
    fn request_round_trip() {
        let req = Request {
            id: RequestId(42),
            payload: b"hello world".to_vec(),
            issued_ns: 123_456,
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let decoded = read_request(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn response_round_trip() {
        let completion = ServerCompletion {
            id: RequestId(9),
            issued_ns: 10,
            enqueued_ns: 20,
            started_ns: 30,
            completed_ns: 40,
            work: WorkProfile::default(),
            response_payload: vec![1, 2, 3, 4, 5],
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &completion).unwrap();
        let frame = read_response(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(frame.id, RequestId(9));
        assert_eq!(frame.issued_ns, 10);
        assert_eq!(frame.enqueued_ns, 20);
        assert_eq!(frame.started_ns, 30);
        assert_eq!(frame.completed_ns, 40);
        assert_eq!(frame.payload, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let empty: Vec<u8> = Vec::new();
        assert!(read_request(&mut Cursor::new(empty.clone()))
            .unwrap()
            .is_none());
        assert!(read_response(&mut Cursor::new(empty)).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let req = Request {
            id: RequestId(1),
            payload: vec![0u8; 100],
            issued_ns: 5,
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(read_request(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn pooled_request_reads_reuse_recycled_buffers() {
        let pool = BufferPool::default();
        let mut buf = Vec::new();
        for i in 0..3u64 {
            let req = Request {
                id: RequestId(i),
                payload: vec![i as u8; 64],
                issued_ns: i,
            };
            write_request(&mut buf, &req).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for i in 0..3u64 {
            let decoded = read_request_pooled(&mut cursor, &pool).unwrap().unwrap();
            assert_eq!(decoded.id, RequestId(i));
            assert_eq!(decoded.payload, vec![i as u8; 64]);
            pool.recycle(decoded.payload);
        }
        assert!(read_request_pooled(&mut cursor, &pool).unwrap().is_none());
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "only the first read allocates");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn response_header_reads_share_one_scratch_buffer() {
        let completion = ServerCompletion {
            id: RequestId(3),
            issued_ns: 1,
            enqueued_ns: 2,
            started_ns: 3,
            completed_ns: 4,
            work: WorkProfile::default(),
            response_payload: vec![9u8; 32],
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &completion).unwrap();
        write_response(&mut buf, &completion).unwrap();
        let mut cursor = Cursor::new(buf);
        let mut scratch = Vec::new();
        let a = read_response_header(&mut cursor, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(a.id, RequestId(3));
        assert_eq!(a.completed_ns, 4);
        assert_eq!(scratch.len(), 32);
        let b = read_response_header(&mut cursor, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(a, b);
        assert!(read_response_header(&mut cursor, &mut scratch)
            .unwrap()
            .is_none());
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            let req = Request {
                id: RequestId(i),
                payload: vec![i as u8; i as usize],
                issued_ns: i * 100,
            };
            write_request(&mut buf, &req).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for i in 0..5u64 {
            let r = read_request(&mut cursor).unwrap().unwrap();
            assert_eq!(r.id, RequestId(i));
            assert_eq!(r.payload.len(), i as usize);
        }
        assert!(read_request(&mut cursor).unwrap().is_none());
    }
}
