//! The top-level benchmark runner.
//!
//! [`execute`] runs a single measurement in whichever harness configuration the
//! [`BenchmarkConfig`] selects, and [`execute_cluster`] does the same for a cluster
//! layout; both validate the configuration on entry.  The historical `run` /
//! `run_with_cost_model` / `run_cluster` entrypoints remain as deprecated wrappers —
//! new code should go through these dispatchers or, one level up, the declarative
//! `tailbench_experiment::Experiment` API.  [`run_repeated`] implements the paper's repeated-run
//! methodology: it re-runs the measurement with fresh seeds (re-randomizing both request
//! payloads and interarrival times) until the 95% confidence intervals of the reported
//! latency metrics are within the target fraction of their means, or a run budget is
//! exhausted.  [`measure_capacity`] estimates an application's saturation throughput,
//! which the experiments use to express offered load as a fraction of capacity
//! (paper Table I reports latencies "at 20% / 50% / 70% load").

use crate::app::{CostModel, RequestFactory, ServerApp};
use crate::config::{BenchmarkConfig, ClusterConfig, HarnessMode};
use crate::error::HarnessError;
use crate::integrated::{run_cluster_integrated, run_integrated};
use crate::net::{run_cluster_tcp, run_tcp};
use crate::report::{ClusterReport, MultiRunReport, RunReport};
use crate::sim::{run_cluster_simulated, run_simulated};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Policy for repeated runs.
#[derive(Debug, Clone, Copy)]
pub struct RepeatPolicy {
    /// Minimum number of runs (the paper always performs several).
    pub min_runs: usize,
    /// Maximum number of runs (budget cap).
    pub max_runs: usize,
    /// Target relative half-width of the 95% confidence interval (0.01 = 1%).
    pub target_fraction: f64,
}

impl Default for RepeatPolicy {
    fn default() -> Self {
        RepeatPolicy {
            min_runs: 3,
            max_runs: 10,
            target_fraction: 0.01,
        }
    }
}

impl RepeatPolicy {
    /// A cheap policy for tests and quick sweeps: exactly `runs` runs, no convergence
    /// requirement beyond what those runs provide.
    #[must_use]
    pub fn fixed(runs: usize) -> Self {
        RepeatPolicy {
            min_runs: runs,
            max_runs: runs,
            target_fraction: 0.05,
        }
    }
}

/// Runs one single-server measurement with the configured harness mode — the one
/// low-level dispatcher behind every single-server entrypoint.
///
/// `cost_model` is required by simulated mode and ignored by the real-time modes, so a
/// caller that has a model can always pass `Some(model)` regardless of mode.  Most
/// callers should prefer the declarative `tailbench_experiment::Experiment` API, which
/// adds the app registry, capacity-relative load, sweeps and structured output on top
/// of this function.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if [`BenchmarkConfig::validate`] rejects the
/// configuration or simulated mode is selected without a cost model, and
/// [`HarnessError::Io`] if a TCP configuration fails to set up its sockets.
pub fn execute(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cost_model: Option<&dyn CostModel>,
) -> Result<RunReport, HarnessError> {
    config.validate()?;
    match &config.mode {
        HarnessMode::Integrated => run_integrated(app, factory, config),
        HarnessMode::Loopback { connections } => {
            run_tcp(app, factory, config, *connections, 0, "loopback")
        }
        HarnessMode::Networked {
            connections,
            one_way_delay_ns,
        } => run_tcp(
            app,
            factory,
            config,
            *connections,
            *one_way_delay_ns,
            "networked",
        ),
        HarnessMode::Simulated => match cost_model {
            Some(model) => run_simulated(app, factory, config, model),
            None => Err(HarnessError::Config(
                "simulated mode requires a cost model; pass Some(cost_model) to \
                 runner::execute (the Experiment API supplies one from its registry)"
                    .into(),
            )),
        },
    }
}

/// Runs one cluster measurement with the configured harness mode — the one low-level
/// dispatcher behind every cluster entrypoint.
///
/// `apps` holds one server application per cluster instance
/// (`cluster.instances() = shards * replication`, shard-major order); each instance
/// runs with its own queue and worker pool (or simulated station).  Simulated mode
/// requires `cost_model`; the real-time modes ignore it.  In the TCP modes the client
/// opens one connection per instance, so the `connections` field of the mode is not
/// used (see [`BenchmarkConfig::validate_cluster`]).
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if [`BenchmarkConfig::validate_cluster`] rejects
/// the configuration, for a wrong `apps` count, or for simulated mode without a cost
/// model, and [`HarnessError::Io`] if a TCP configuration fails to set up its sockets.
pub fn execute_cluster(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    cost_model: Option<&dyn CostModel>,
) -> Result<ClusterReport, HarnessError> {
    config.validate_cluster(cluster)?;
    match &config.mode {
        HarnessMode::Integrated => run_cluster_integrated(apps, factory, config, cluster),
        HarnessMode::Loopback { .. } => {
            run_cluster_tcp(apps, factory, config, cluster, 0, "loopback")
        }
        HarnessMode::Networked {
            one_way_delay_ns, ..
        } => run_cluster_tcp(
            apps,
            factory,
            config,
            cluster,
            *one_way_delay_ns,
            "networked",
        ),
        HarnessMode::Simulated => match cost_model {
            Some(model) => run_cluster_simulated(apps, factory, config, cluster, model),
            None => Err(HarnessError::Config(
                "simulated cluster runs require a cost model; pass Some(cost_model)".into(),
            )),
        },
    }
}

/// Runs one measurement with the configured harness mode.
///
/// Simulated mode requires a cost model; use [`run_with_cost_model`] for that.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if the configuration selects simulated mode (no cost
/// model is available here) or is otherwise inconsistent, and [`HarnessError::Io`] if a
/// TCP configuration fails to set up its sockets.
#[deprecated(
    since = "0.2.0",
    note = "use runner::execute(app, factory, config, None), or the unified \
            tailbench_experiment::Experiment API"
)]
pub fn run(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
) -> Result<RunReport, HarnessError> {
    execute(app, factory, config, None)
}

/// Runs one measurement, supplying the cost model needed by simulated mode.  Real-time
/// modes ignore the cost model.
///
/// # Errors
///
/// Same as [`execute`].
#[deprecated(
    since = "0.2.0",
    note = "use runner::execute(app, factory, config, Some(cost_model)), or the unified \
            tailbench_experiment::Experiment API"
)]
pub fn run_with_cost_model(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cost_model: &dyn CostModel,
) -> Result<RunReport, HarnessError> {
    execute(app, factory, config, Some(cost_model))
}

/// Runs one cluster measurement with the configured harness mode.
///
/// # Errors
///
/// Same as [`execute_cluster`].
#[deprecated(
    since = "0.2.0",
    note = "use runner::execute_cluster, or the unified tailbench_experiment::Experiment \
            API with an ExperimentSpec topology"
)]
pub fn run_cluster(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    cost_model: Option<&dyn CostModel>,
) -> Result<ClusterReport, HarnessError> {
    execute_cluster(apps, factory, config, cluster, cost_model)
}

/// Runs the measurement repeatedly with fresh seeds until the latency metrics converge
/// (95% CI within `policy.target_fraction` of the mean) or `policy.max_runs` is reached.
///
/// `make_factory` is called once per run with that run's seed so request streams are
/// re-randomized, as the methodology requires.
///
/// # Errors
///
/// Propagates the first error encountered by an individual run.
pub fn run_repeated<F>(
    app: &Arc<dyn ServerApp>,
    mut make_factory: F,
    config: &BenchmarkConfig,
    policy: RepeatPolicy,
    cost_model: Option<&dyn CostModel>,
) -> Result<MultiRunReport, HarnessError>
where
    F: FnMut(u64) -> Box<dyn RequestFactory>,
{
    let mut runs = Vec::new();
    for run_idx in 0..policy.max_runs.max(1) {
        let seed = tailbench_workloads::rng::derive_seed(config.seed, run_idx as u64);
        let run_config = config.clone().with_seed(seed);
        let mut factory = make_factory(seed);
        let report = execute(app, factory.as_mut(), &run_config, cost_model)?;
        runs.push(report);
        if runs.len() >= policy.min_runs.max(2) {
            let interim =
                MultiRunReport::from_runs(runs.clone(), policy.target_fraction, policy.min_runs);
            if interim.converged {
                return Ok(interim);
            }
        }
    }
    Ok(MultiRunReport::from_runs(
        runs,
        policy.target_fraction,
        policy.min_runs,
    ))
}

/// Estimates the application's saturation throughput (requests per second) with the
/// given number of worker threads by executing `sample_requests` back-to-back across the
/// workers and measuring the completion rate.
///
/// This is the denominator used to express offered load as a fraction of capacity.
#[must_use]
pub fn measure_capacity(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    threads: usize,
    sample_requests: usize,
) -> f64 {
    app.prepare();
    let threads = threads.max(1);
    let sample_requests = sample_requests.max(threads);
    let payloads: Vec<Vec<u8>> = (0..sample_requests)
        .map(|_| factory.next_request())
        .collect();
    let payloads = Arc::new(payloads);
    let next = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let app = Arc::clone(app);
            let payloads = Arc::clone(&payloads);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut served = 0u64;
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if idx >= payloads.len() {
                        break;
                    }
                    let _ = app.handle(&payloads[idx]);
                    served += 1;
                }
                served
            })
        })
        .collect();
    let total: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("capacity worker panicked"))
        .sum();
    let elapsed = start.elapsed().as_secs_f64();
    if elapsed <= 0.0 {
        return 0.0;
    }
    total as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{EchoApp, InstructionRateModel};
    use crate::config::{BenchmarkConfig, HarnessMode};

    fn echo() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp::with_service_us(10))
    }

    #[test]
    fn execute_dispatches_to_integrated() {
        let app = echo();
        let mut factory = || vec![1u8];
        let report = execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(1_000.0, 200),
            None,
        )
        .unwrap();
        assert_eq!(report.configuration, "integrated");
    }

    #[test]
    fn execute_simulated_requires_cost_model() {
        let app = echo();
        let mut factory = || vec![1u8];
        let config = BenchmarkConfig::new(1_000.0, 50).with_mode(HarnessMode::Simulated);
        assert!(execute(&app, &mut factory, &config, None).is_err());
        let model = InstructionRateModel::default();
        let report = execute(&app, &mut factory, &config, Some(&model)).unwrap();
        assert_eq!(report.configuration, "simulated");
    }

    #[test]
    fn execute_rejects_invalid_configs_up_front() {
        let app = echo();
        let mut factory = || vec![1u8];
        let mut config = BenchmarkConfig::new(1_000.0, 100);
        config.worker_threads = 0;
        let err = execute(&app, &mut factory, &config, None).unwrap_err();
        assert!(err.to_string().contains("worker_threads"), "{err}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_dispatch() {
        let app = echo();
        let mut factory = || vec![1u8];
        let report = run(&app, &mut factory, &BenchmarkConfig::new(1_000.0, 100)).unwrap();
        assert_eq!(report.configuration, "integrated");
        let config = BenchmarkConfig::new(1_000.0, 50).with_mode(HarnessMode::Simulated);
        let model = InstructionRateModel::default();
        let report = run_with_cost_model(&app, &mut factory, &config, &model).unwrap();
        assert_eq!(report.configuration, "simulated");
    }

    #[test]
    fn run_cluster_dispatches_every_mode() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let apps: Vec<Arc<dyn ServerApp>> = (0..2)
            .map(|_| Arc::new(EchoApp::with_service_us(5)) as Arc<dyn ServerApp>)
            .collect();
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let model = InstructionRateModel::default();
        for (mode, expect_prefix) in [
            (HarnessMode::Integrated, "integrated"),
            (HarnessMode::Loopback { connections: 1 }, "loopback"),
            (HarnessMode::Simulated, "simulated"),
        ] {
            let mut factory = || vec![3u8];
            let config = BenchmarkConfig::new(500.0, 100)
                .with_warmup(10)
                .with_mode(mode);
            let report =
                execute_cluster(&apps, &mut factory, &config, &cluster, Some(&model)).unwrap();
            assert!(
                report.cluster.configuration.starts_with(expect_prefix),
                "configuration {} should start with {expect_prefix}",
                report.cluster.configuration
            );
            assert!(report
                .cluster
                .configuration
                .contains("cluster2x1-broadcast"));
            assert!(report.cluster.requests > 0);
        }
        // Simulated mode without a cost model is a configuration error.
        let mut factory = || vec![3u8];
        let config = BenchmarkConfig::new(500.0, 50).with_mode(HarnessMode::Simulated);
        assert!(execute_cluster(&apps, &mut factory, &config, &cluster, None).is_err());
    }

    #[test]
    fn repeated_runs_aggregate() {
        let app = echo();
        let config = BenchmarkConfig::new(1_000.0, 150).with_warmup(20);
        let multi = run_repeated(
            &app,
            |_seed| Box::new(|| vec![7u8]) as Box<dyn RequestFactory>,
            &config,
            RepeatPolicy {
                min_runs: 2,
                max_runs: 3,
                target_fraction: 0.5,
            },
            None,
        )
        .unwrap();
        assert!(multi.runs.len() >= 2);
        assert!(multi.p95_ns() > 0.0);
    }

    #[test]
    fn capacity_measurement_is_positive_and_scales_down_with_work() {
        let light = Arc::new(EchoApp::with_service_us(1)) as Arc<dyn ServerApp>;
        let heavy = Arc::new(EchoApp::with_service_us(100)) as Arc<dyn ServerApp>;
        let mut factory = || vec![0u8];
        let light_cap = measure_capacity(&light, &mut factory, 1, 2_000);
        let mut factory = || vec![0u8];
        let heavy_cap = measure_capacity(&heavy, &mut factory, 1, 200);
        assert!(light_cap > 0.0 && heavy_cap > 0.0);
        assert!(
            light_cap > heavy_cap,
            "light {light_cap} should exceed heavy {heavy_cap}"
        );
    }
}
