//! Discrete-event simulation of the integrated configuration.
//!
//! The paper's key enabler for architecture studies is that the integrated configuration
//! can be driven by a simulator instead of wall-clock execution (§VI).  This runner plays
//! that role: it executes the application functionally (so data structures behave exactly
//! as in a real run) but derives *service times* from a [`CostModel`] fed with the
//! per-request [`WorkProfile`](crate::request::WorkProfile), and advances a virtual clock
//! through a standard discrete-event loop with `worker_threads` servers and a FIFO
//! request queue.  Queuing behaviour — the dominant component of tail latency at load —
//! emerges from the same open-loop arrival process used by the real-time runners.

use crate::app::{CostModel, RequestFactory, ServerApp};
use crate::collector::{ClusterCollector, StatsCollector};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::integrated::{build_cluster_report, build_report, check_instances};
use crate::report::{ClusterReport, RunReport};
use crate::request::{Request, RequestRecord};
use crate::traffic::{LoadMode, TrafficShaper};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use tailbench_workloads::rng::seeded_rng;

/// A pending service completion in the event heap (min-heap by completion time).
#[derive(Debug, PartialEq, Eq)]
struct Completion {
    time_ns: u64,
    seq: u64,
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest completion.
        other
            .time_ns
            .cmp(&self.time_ns)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs one measurement under discrete-event simulation and returns its report.
///
/// The simulated system has `config.worker_threads` servers; arrivals follow
/// `config.load` (which must be open-loop); service times come from `cost_model`.
///
/// # Panics
///
/// Panics if `config.load` is closed-loop; the simulated runner implements only the
/// open-loop methodology.
pub fn run_simulated(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cost_model: &dyn CostModel,
) -> RunReport {
    let LoadMode::Open(process) = &config.load else {
        panic!("the simulated runner requires an open-loop load mode");
    };
    app.prepare();

    let mut rng = seeded_rng(config.seed, 1);
    let shaper = TrafficShaper::build(process, &mut rng, config.total_requests(), 0, || {
        factory.next_request()
    });
    let arrivals = shaper.into_requests();

    let servers = config.worker_threads.max(1);
    let mut collector = StatsCollector::new(config.warmup_requests as u64);
    let mut waiting: VecDeque<(Request, u64)> = VecDeque::new();
    let mut completions: BinaryHeap<Completion> = BinaryHeap::new();
    // Records of requests currently in service, indexed by completion seq.
    let mut in_service: std::collections::HashMap<u64, RequestRecord> =
        std::collections::HashMap::new();
    let mut busy = 0usize;
    let mut seq = 0u64;
    let mut next_arrival = 0usize;

    // Helper to start service for a request at virtual time `now`.
    let start_service =
        |request: Request,
         enqueued_ns: u64,
         now: u64,
         busy: &mut usize,
         seq: &mut u64,
         completions: &mut BinaryHeap<Completion>,
         in_service: &mut std::collections::HashMap<u64, RequestRecord>| {
            *busy += 1;
            let response = app.handle(&request.payload);
            let service_ns = cost_model.service_time_ns(&response.work, *busy).max(1);
            let record = RequestRecord {
                id: request.id,
                issued_ns: request.issued_ns,
                enqueued_ns,
                started_ns: now,
                completed_ns: now + service_ns,
                client_received_ns: now + service_ns,
            };
            *seq += 1;
            in_service.insert(*seq, record);
            completions.push(Completion {
                time_ns: now + service_ns,
                seq: *seq,
            });
        };

    loop {
        let next_arrival_time = arrivals.get(next_arrival).map(|r| r.issued_ns);
        let next_completion_time = completions.peek().map(|c| c.time_ns);

        // Pick the earlier of the next arrival and the next completion; arrivals win ties
        // so that a request arriving exactly when a worker frees up still observes the
        // queue state before the completion is processed (a conservative FIFO choice).
        let take_arrival = match (next_arrival_time, next_completion_time) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(at), Some(ct)) => at <= ct,
        };

        if take_arrival {
            // Arrival event.
            let request = arrivals[next_arrival].clone();
            next_arrival += 1;
            let now = request.issued_ns;
            if busy < servers {
                start_service(
                    request,
                    now,
                    now,
                    &mut busy,
                    &mut seq,
                    &mut completions,
                    &mut in_service,
                );
            } else {
                waiting.push_back((request, now));
            }
        } else {
            // Completion event.
            let completion = completions.pop().expect("peeked above");
            let ct = completion.time_ns;
            let record = in_service
                .remove(&completion.seq)
                .expect("completion for unknown request");
            collector.record(&record);
            busy -= 1;
            if let Some((request, enqueued_ns)) = waiting.pop_front() {
                start_service(
                    request,
                    enqueued_ns,
                    ct,
                    &mut busy,
                    &mut seq,
                    &mut completions,
                    &mut in_service,
                );
            }
        }
    }

    build_report(app.name(), "simulated", config, &collector)
}

/// One simulated server instance: its busy-server count and FIFO wait queue.
#[derive(Debug, Default)]
struct Station {
    busy: usize,
    waiting: VecDeque<(Request, u64)>,
}

/// Runs one cluster measurement under discrete-event simulation.
///
/// All `cluster.instances()` server stations share a single virtual clock and event
/// heap, so a cluster run is exactly as deterministic and host-independent as a
/// single-server simulated run: same seed, same report, on any machine.  Each station
/// has `config.worker_threads` servers and its own FIFO queue; the client-side router
/// distributes the open-loop schedule per `cluster.fanout`, and broadcast legs merge
/// last-response-wins in the cross-shard collector.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if the load mode is closed-loop or `apps` does not
/// hold exactly one application per instance.
pub fn run_cluster_simulated(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    cost_model: &dyn CostModel,
) -> Result<ClusterReport, HarnessError> {
    let LoadMode::Open(process) = &config.load else {
        return Err(HarnessError::Config(
            "the simulated runner requires an open-loop load mode".into(),
        ));
    };
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let mut rng = seeded_rng(config.seed, 1);
    let shaper = TrafficShaper::build(process, &mut rng, config.total_requests(), 0, || {
        factory.next_request()
    });
    let arrivals = shaper.into_requests();

    let servers = config.worker_threads.max(1);
    let width = cluster.fanout_width();
    let mut collector = ClusterCollector::new(cluster.shards, config.warmup_requests as u64);
    let mut stations: Vec<Station> = (0..apps.len()).map(|_| Station::default()).collect();
    let mut completions: BinaryHeap<Completion> = BinaryHeap::new();
    // Requests in service, by completion seq: (instance, record).  Only keyed lookups —
    // never iterated — so the map cannot perturb event ordering.
    let mut in_service: std::collections::HashMap<u64, (usize, RequestRecord)> =
        std::collections::HashMap::new();
    let mut seq = 0u64;
    let mut next_arrival = 0usize;

    // Starts service for one leg on `instance` at virtual time `now`.
    let start_service =
        |instance: usize,
         request: Request,
         enqueued_ns: u64,
         now: u64,
         stations: &mut Vec<Station>,
         seq: &mut u64,
         completions: &mut BinaryHeap<Completion>,
         in_service: &mut std::collections::HashMap<u64, (usize, RequestRecord)>| {
            stations[instance].busy += 1;
            let response = apps[instance].handle(&request.payload);
            let service_ns = cost_model
                .service_time_ns(&response.work, stations[instance].busy)
                .max(1);
            let record = RequestRecord {
                id: request.id,
                issued_ns: request.issued_ns,
                enqueued_ns,
                started_ns: now,
                completed_ns: now + service_ns,
                client_received_ns: now + service_ns,
            };
            *seq += 1;
            in_service.insert(*seq, (instance, record));
            completions.push(Completion {
                time_ns: now + service_ns,
                seq: *seq,
            });
        };

    loop {
        let next_arrival_time = arrivals.get(next_arrival).map(|r| r.issued_ns);
        let next_completion_time = completions.peek().map(|c| c.time_ns);
        // Arrivals win ties, matching the single-server loop.
        let take_arrival = match (next_arrival_time, next_completion_time) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(at), Some(ct)) => at <= ct,
        };

        if take_arrival {
            let request = arrivals[next_arrival].clone();
            next_arrival += 1;
            let now = request.issued_ns;
            let legs = match cluster.fanout.route(&request.payload, cluster.shards) {
                Route::Shard(shard) => shard..shard + 1,
                Route::AllShards => 0..cluster.shards,
            };
            for shard in legs {
                let instance = cluster.instance(shard, request.id.0);
                let leg = request.clone();
                if stations[instance].busy < servers {
                    start_service(
                        instance,
                        leg,
                        now,
                        now,
                        &mut stations,
                        &mut seq,
                        &mut completions,
                        &mut in_service,
                    );
                } else {
                    stations[instance].waiting.push_back((leg, now));
                }
            }
        } else {
            let completion = completions.pop().expect("peeked above");
            let ct = completion.time_ns;
            let (instance, record) = in_service
                .remove(&completion.seq)
                .expect("completion for unknown request");
            let _ = collector.record_leg(instance / cluster.replication, record, width);
            stations[instance].busy -= 1;
            if let Some((request, enqueued_ns)) = stations[instance].waiting.pop_front() {
                start_service(
                    instance,
                    request,
                    enqueued_ns,
                    ct,
                    &mut stations,
                    &mut seq,
                    &mut completions,
                    &mut in_service,
                );
            }
        }
    }

    Ok(build_cluster_report(
        apps[0].name(),
        "simulated",
        config,
        cluster,
        &collector,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{EchoApp, InstructionRateModel};
    use crate::config::BenchmarkConfig;

    fn app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp {
            spin_iters: 100_000, // ~100k "instructions" per request
        })
    }

    #[test]
    fn simulated_run_is_deterministic() {
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let config = BenchmarkConfig::new(2_000.0, 500)
            .with_warmup(50)
            .with_seed(3);
        let mut factory = || b"sim".to_vec();
        let a = run_simulated(&app, &mut factory, &config, &model);
        let mut factory = || b"sim".to_vec();
        let b = run_simulated(&app, &mut factory, &config, &model);
        assert_eq!(a.sojourn.p95_ns, b.sojourn.p95_ns);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.requests, 500);
    }

    #[test]
    fn latency_grows_with_load_in_simulation() {
        let app = app();
        // 100k instructions x 1 ns = 100 us service => saturation ~10k QPS.
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let mut factory = || b"x".to_vec();
        let low = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(1_000.0, 2_000).with_seed(7),
            &model,
        );
        let mut factory = || b"x".to_vec();
        let high = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(9_000.0, 2_000).with_seed(7),
            &model,
        );
        assert!(
            high.sojourn.p95_ns > 2 * low.sojourn.p95_ns,
            "p95 at 90% load ({}) should far exceed p95 at 10% load ({})",
            high.sojourn.p95_ns,
            low.sojourn.p95_ns
        );
    }

    #[test]
    fn more_servers_reduce_queueing_at_same_total_load() {
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let mut factory = || b"x".to_vec();
        let one = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(8_000.0, 2_000)
                .with_threads(1)
                .with_seed(5),
            &model,
        );
        let mut factory = || b"x".to_vec();
        let four = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(8_000.0, 2_000)
                .with_threads(4)
                .with_seed(5),
            &model,
        );
        assert!(
            four.sojourn.p95_ns < one.sojourn.p95_ns,
            "4 servers p95 {} should be below 1 server p95 {}",
            four.sojourn.p95_ns,
            one.sojourn.p95_ns
        );
    }

    #[test]
    fn simulated_cluster_is_deterministic_and_amplifies_the_tail() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let run = |shards: usize| {
            let apps: Vec<Arc<dyn ServerApp>> = (0..shards)
                .map(|_| {
                    Arc::new(EchoApp {
                        spin_iters: 100_000,
                    }) as Arc<dyn ServerApp>
                })
                .collect();
            let cluster = ClusterConfig::new(shards, FanoutPolicy::Broadcast);
            let mut factory = || b"c".to_vec();
            let config = BenchmarkConfig::new(5_000.0, 1_000)
                .with_warmup(100)
                .with_seed(21);
            run_cluster_simulated(&apps, &mut factory, &config, &cluster, &model).unwrap()
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(a.cluster.sojourn.p99_ns, b.cluster.sojourn.p99_ns);
        assert_eq!(a.per_shard[2].sojourn.p95_ns, b.per_shard[2].sojourn.p95_ns);
        assert_eq!(a.cluster.requests, 1_000);

        // Broadcast fan-out: the cluster tail waits for the slowest of the shards, so it
        // is at least any single shard's tail and amplification never drops below 1.
        assert!(a.cluster.sojourn.p99_ns >= a.max_shard_p99_ns());
        assert!(a.p99_amplification() >= 1.0);

        // One "shard" fanned out is just a single server: no amplification.
        let single = run(1);
        assert_eq!(
            single.cluster.sojourn.p99_ns,
            single.per_shard[0].sojourn.p99_ns
        );
    }

    #[test]
    fn simulated_cluster_routed_load_splits_across_shards() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| {
                Arc::new(EchoApp {
                    spin_iters: 100_000,
                }) as Arc<dyn ServerApp>
            })
            .collect();
        let cluster = ClusterConfig::new(4, FanoutPolicy::HashKey { offset: 0, len: 8 });
        let mut n = 0u64;
        let mut factory = move || {
            n += 1;
            n.to_le_bytes().to_vec()
        };
        let config = BenchmarkConfig::new(8_000.0, 2_000)
            .with_warmup(0)
            .with_seed(9);
        let report = run_cluster_simulated(&apps, &mut factory, &config, &cluster, &model).unwrap();
        let shard_total: u64 = report.per_shard.iter().map(|r| r.requests).sum();
        assert_eq!(shard_total, report.cluster.requests);
        assert_eq!(report.cluster.requests, 2_000);
        for shard in &report.per_shard {
            assert!(
                shard.requests > 300,
                "hash routing should spread load, shard got {}",
                shard.requests
            );
        }
        // Sharding a single-key workload 4 ways quarters each server's load, so the
        // cluster tail sits far below a single server handling the full rate.
        let mut single_factory = {
            let mut n = 0u64;
            move || {
                n += 1;
                n.to_le_bytes().to_vec()
            }
        };
        let one: Arc<dyn ServerApp> = Arc::new(EchoApp {
            spin_iters: 100_000,
        });
        let single = run_simulated(&one, &mut single_factory, &config, &model);
        assert!(report.cluster.sojourn.p99_ns < single.sojourn.p99_ns);
    }

    #[test]
    fn simulated_cluster_replication_spreads_single_key_load() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let make_apps = |n: usize| -> Vec<Arc<dyn ServerApp>> {
            (0..n)
                .map(|_| {
                    Arc::new(EchoApp {
                        spin_iters: 100_000,
                    }) as Arc<dyn ServerApp>
                })
                .collect()
        };
        let config = BenchmarkConfig::new(8_000.0, 1_500)
            .with_warmup(0)
            .with_seed(4);
        let mut factory = || vec![0u8; 9]; // constant key: everything routes to one shard
        let unreplicated = run_cluster_simulated(
            &make_apps(2),
            &mut factory,
            &config,
            &ClusterConfig::new(2, FanoutPolicy::ycsb()),
            &model,
        )
        .unwrap();
        let mut factory = || vec![0u8; 9];
        let replicated = run_cluster_simulated(
            &make_apps(4),
            &mut factory,
            &config,
            &ClusterConfig::new(2, FanoutPolicy::ycsb()).with_replication(2),
            &model,
        )
        .unwrap();
        assert_eq!(replicated.replication, 2);
        // Two replicas split the hot shard's load, so the tail must improve.
        assert!(
            replicated.cluster.sojourn.p99_ns < unreplicated.cluster.sojourn.p99_ns,
            "replicated p99 {} vs unreplicated p99 {}",
            replicated.cluster.sojourn.p99_ns,
            unreplicated.cluster.sojourn.p99_ns
        );
    }

    #[test]
    fn virtual_time_spans_do_not_depend_on_host_speed() {
        // At 1000 QPS, 1000 requests span ~1 virtual second regardless of how fast the
        // host executes the handler functionally.
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 0.5,
        };
        let mut factory = || b"x".to_vec();
        let report = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(1_000.0, 1_000)
                .with_warmup(0)
                .with_seed(11),
            &model,
        );
        let span_s = report.duration_ns as f64 / 1e9;
        assert!((span_s - 1.0).abs() < 0.15, "span = {span_s} s");
    }
}
