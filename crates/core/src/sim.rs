//! Discrete-event simulation of the integrated configuration.
//!
//! The paper's key enabler for architecture studies is that the integrated configuration
//! can be driven by a simulator instead of wall-clock execution (§VI).  This runner plays
//! that role: it executes the application functionally (so data structures behave exactly
//! as in a real run) but derives *service times* from a [`CostModel`] fed with the
//! per-request [`WorkProfile`](crate::request::WorkProfile), and advances a virtual clock
//! through a standard discrete-event loop with `worker_threads` servers and a FIFO
//! request queue.  Queuing behaviour — the dominant component of tail latency at load —
//! emerges from the same open-loop arrival process used by the real-time runners.
//!
//! The simulated FIFO shares the real-time queue's [`DepthTracker`] accounting, so a
//! DES run reports the same queue summary (peak depth, drops under a `Drop` admission
//! policy, sampled depth timeline) as a wall-clock run — deterministically, on the
//! virtual clock.  A `Block` policy cannot defer fixed open-loop arrivals in virtual
//! time, so the simulator treats it as unbounded (matching the default).  Virtual-time
//! pacing is exact, so the pacing summary of a simulated run is empty by construction.
//!
//! Scenario support: arrivals may follow a precompiled phased trace
//! ([`LoadMode::Trace`](crate::traffic::LoadMode)), service times are adjusted by the
//! configuration's deterministic [`InterferencePlan`](crate::interference::InterferencePlan),
//! and cluster runs honour the router's hedged-request policy
//! ([`HedgePolicy`](crate::config::HedgePolicy)) — all on the virtual clock, so a fixed
//! seed still pins exact percentiles.

use crate::app::{CostModel, RequestFactory, ServerApp};
use crate::collector::{ClusterCollector, RequestTags, StatsCollector};
use crate::config::{BenchmarkConfig, ClusterConfig, Route};
use crate::error::HarnessError;
use crate::integrated::{build_cluster_report, build_report, check_instances};
use crate::queue::{priority_victim, AdmissionPolicy, DepthTracker};
use crate::report::{ClusterReport, HedgeStats, QueueSummary, RunReport};
use crate::request::{Request, RequestRecord};
use crate::traffic::TrafficShaper;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use tailbench_workloads::rng::seeded_rng;

/// One leg copy waiting in a station's FIFO queue (also used, with `shard` 0, by the
/// single-server loop so both loops share the admission helpers).
#[derive(Debug)]
struct QueuedLeg {
    request: Request,
    enqueued_ns: u64,
    shard: usize,
    is_hedge: bool,
}

/// Applies a shedding admission policy to one leg arriving at a full-or-not FIFO.
/// Returns `true` when the leg was queued; `false` when the arrival itself was shed
/// (counted as a drop).  Requests that were *admitted earlier* but shed now to make
/// room — expired head-of-line requests under `DropDeadline`, the evicted victim under
/// `Priority` — are reclassified in the tracker and appended to `removed` so cluster
/// callers can unwind per-leg hedging/tied bookkeeping.
fn enqueue_or_shed(
    waiting: &mut VecDeque<QueuedLeg>,
    tracker: &mut DepthTracker,
    admission: &AdmissionPolicy,
    tags: Option<&RequestTags>,
    leg: QueuedLeg,
    now: u64,
    removed: &mut Vec<QueuedLeg>,
) -> bool {
    if let Some(capacity) = admission.shed_capacity() {
        if waiting.len() >= capacity {
            match *admission {
                AdmissionPolicy::DropDeadline { slo_ns, .. } => {
                    while waiting
                        .front()
                        .is_some_and(|q| now.saturating_sub(q.enqueued_ns) > slo_ns)
                    {
                        if let Some(expired) = waiting.pop_front() {
                            tracker.on_shed_admitted();
                            removed.push(expired);
                        }
                    }
                    if waiting.len() >= capacity {
                        tracker.on_drop();
                        return false;
                    }
                }
                AdmissionPolicy::Priority { .. } => {
                    let class_of = |id: u64| tags.map_or(0, |t| t.class_of(id));
                    let victim = priority_victim(
                        waiting.iter().map(|q| class_of(q.request.id.0)),
                        class_of(leg.request.id.0),
                    );
                    let Some(victim) = victim else {
                        tracker.on_drop();
                        return false;
                    };
                    if let Some(evicted) = waiting.remove(victim) {
                        tracker.on_shed_admitted();
                        removed.push(evicted);
                    }
                }
                _ => {
                    tracker.on_drop();
                    return false;
                }
            }
        }
    }
    waiting.push_back(leg);
    tracker.on_push(now, waiting.len() as u64);
    true
}

/// Pops the next serviceable leg, shedding expired head-of-line legs under a
/// `DropDeadline` policy (each reclassified in the tracker and appended to `removed`).
fn pop_fresh(
    waiting: &mut VecDeque<QueuedLeg>,
    tracker: &mut DepthTracker,
    admission: &AdmissionPolicy,
    now: u64,
    removed: &mut Vec<QueuedLeg>,
) -> Option<QueuedLeg> {
    while let Some(leg) = waiting.pop_front() {
        if admission
            .slo_ns()
            .is_some_and(|slo| now.saturating_sub(leg.enqueued_ns) > slo)
        {
            tracker.on_shed_admitted();
            removed.push(leg);
            continue;
        }
        return Some(leg);
    }
    None
}

/// A pending service completion in the event heap (min-heap by completion time).
#[derive(Debug, PartialEq, Eq)]
struct Completion {
    time_ns: u64,
    seq: u64,
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest completion.
        other
            .time_ns
            .cmp(&self.time_ns)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs one measurement under discrete-event simulation and returns its report.
///
/// The simulated system has `config.worker_threads` servers; arrivals follow
/// `config.load` (which must be open-loop: Poisson or a precompiled trace); service
/// times come from `cost_model`, adjusted by `config.interference`.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if `config.load` is closed-loop (the simulated
/// runner implements only the open-loop methodology) and [`HarnessError::Internal`]
/// if the event loop's bookkeeping invariants are violated.
pub fn run_simulated(
    app: &Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cost_model: &dyn CostModel,
) -> Result<RunReport, HarnessError> {
    app.prepare();

    let mut rng = seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .ok_or_else(|| {
            HarnessError::Config("the simulated runner requires an open-loop load mode".into())
        })?;
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let arrivals = shaper.into_requests();

    let servers = config.worker_threads.max(1);
    let plan = config.interference.clone();
    let mut collector =
        StatsCollector::new(config.warmup_requests as u64).with_tags(config.tags.clone());
    let mut tracker = DepthTracker::new();
    let tags = config.tags.clone();
    let mut removed: Vec<QueuedLeg> = Vec::new();
    let mut waiting: VecDeque<QueuedLeg> = VecDeque::new();
    let mut completions: BinaryHeap<Completion> = BinaryHeap::new();
    // Records of requests currently in service, indexed by completion seq.
    let mut in_service: HashMap<u64, RequestRecord> = HashMap::new();
    let mut busy = 0usize;
    let mut seq = 0u64;
    let mut next_arrival = 0usize;

    // Helper to start service for a request at virtual time `now`.
    let start_service = |request: Request,
                         enqueued_ns: u64,
                         now: u64,
                         busy: &mut usize,
                         seq: &mut u64,
                         completions: &mut BinaryHeap<Completion>,
                         in_service: &mut HashMap<u64, RequestRecord>| {
        *busy += 1;
        let response = app.handle(&request.payload);
        let base_ns = cost_model.service_time_ns(&response.work, *busy);
        let service_ns = plan
            .adjusted_service_ns(0, now, base_ns, request.id.0)
            .max(1);
        let record = RequestRecord {
            id: request.id,
            issued_ns: request.issued_ns,
            enqueued_ns,
            started_ns: now,
            completed_ns: now + service_ns,
            client_received_ns: now + service_ns,
        };
        *seq += 1;
        in_service.insert(*seq, record);
        completions.push(Completion {
            time_ns: now + service_ns,
            seq: *seq,
        });
    };

    loop {
        let next_arrival_req = arrivals.get(next_arrival);
        let next_arrival_time = next_arrival_req.map(|r| r.issued_ns);
        let next_completion_time = completions.peek().map(|c| c.time_ns);

        // Pick the earlier of the next arrival and the next completion; arrivals win ties
        // so that a request arriving exactly when a worker frees up still observes the
        // queue state before the completion is processed (a conservative FIFO choice).
        let take_arrival = match (next_arrival_time, next_completion_time) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(at), Some(ct)) => at <= ct,
        };

        if take_arrival {
            // Arrival event.
            let Some(request) = next_arrival_req.cloned() else {
                break;
            };
            next_arrival += 1;
            let now = request.issued_ns;
            if busy < servers {
                start_service(
                    request,
                    now,
                    now,
                    &mut busy,
                    &mut seq,
                    &mut completions,
                    &mut in_service,
                );
                // Inclusive depth, matching the real-time queue's post-push sample: a
                // request transits the queue (depth 1) even when a server is idle.
                tracker.on_push(now, 1);
            } else {
                let _ = enqueue_or_shed(
                    &mut waiting,
                    &mut tracker,
                    &config.admission,
                    tags.as_deref(),
                    QueuedLeg {
                        request,
                        enqueued_ns: now,
                        shard: 0,
                        is_hedge: false,
                    },
                    now,
                    &mut removed,
                );
                removed.clear();
            }
        } else {
            // Completion event.
            let Some(completion) = completions.pop() else {
                break;
            };
            let ct = completion.time_ns;
            let record = in_service.remove(&completion.seq).ok_or_else(|| {
                HarnessError::Internal("completion event for a request not in service".into())
            })?;
            collector.record(&record);
            busy -= 1;
            removed.clear();
            if let Some(queued) = pop_fresh(
                &mut waiting,
                &mut tracker,
                &config.admission,
                ct,
                &mut removed,
            ) {
                start_service(
                    queued.request,
                    queued.enqueued_ns,
                    ct,
                    &mut busy,
                    &mut seq,
                    &mut completions,
                    &mut in_service,
                );
            }
        }
    }

    let mut report = build_report(app.name(), "simulated", config, &collector);
    report.queue_depth = tracker.summary(config.admission.label());
    Ok(report)
}

/// One simulated server instance: its busy-server count, FIFO wait queue and the
/// queue-depth accounting that reports it.
#[derive(Debug, Default)]
struct Station {
    busy: usize,
    waiting: VecDeque<QueuedLeg>,
    tracker: DepthTracker,
}

/// Fallible station lookup: a missing instance is a routing bug surfaced as an
/// internal error, never a panic mid-simulation.
fn station_mut(stations: &mut [Station], instance: usize) -> Result<&mut Station, HarnessError> {
    stations
        .get_mut(instance)
        .ok_or_else(|| HarnessError::Internal(format!("station index {instance} out of range")))
}

/// A scheduled virtual-time event of the cluster loop.  Min-heap by time; completions
/// outrank hedge checks at equal times (a response landing exactly at the deadline
/// cancels the hedge); FIFO by push order among equals.
#[derive(Debug, PartialEq, Eq)]
struct Event {
    time_ns: u64,
    rank: u8,
    seq: u64,
    what: EventKind,
}

#[derive(Debug, PartialEq, Eq)]
enum EventKind {
    /// Service completion of the in-service entry keyed by this event's `seq`.
    Completion,
    /// Hedge deadline of request `id`'s leg on `shard`.
    HedgeCheck { id: u64, shard: usize },
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time_ns
            .cmp(&self.time_ns)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A request copy in service, indexed by its completion event's seq.
#[derive(Debug)]
struct ServiceEntry {
    instance: usize,
    shard: usize,
    is_hedge: bool,
    record: RequestRecord,
}

/// Client-side state of one leg (request × shard) under hedging or tied requests.
#[derive(Debug)]
struct Leg {
    resolved: bool,
    hedged: bool,
    /// Copies currently admitted (queued or in service).  A leg whose copies were all
    /// shed stays unresolved and surfaces as `unmerged` in the report.
    outstanding: u8,
    request: Request,
    /// The instance the selector picked as primary.
    primary: usize,
    /// Where the hedge/tied copy went (equals `primary` until a copy is issued).
    secondary: usize,
}

/// Unwinds per-leg bookkeeping for queued copies that were shed after admission
/// (deadline purge or priority eviction pulled them back out of a station queue).
fn unwind_removed(removed: &mut Vec<QueuedLeg>, legs: &mut HashMap<(u64, usize), Leg>) {
    for q in removed.drain(..) {
        let key = (q.request.id.0, q.shard);
        if let Some(leg) = legs.get_mut(&key) {
            leg.outstanding = leg.outstanding.saturating_sub(1);
            if leg.outstanding == 0 && leg.resolved {
                legs.remove(&key);
            }
        }
    }
}

/// Runs one cluster measurement under discrete-event simulation.
///
/// All `cluster.instances()` server stations share a single virtual clock and event
/// heap, so a cluster run is exactly as deterministic and host-independent as a
/// single-server simulated run: same seed, same report, on any machine.  Each station
/// has `config.worker_threads` servers and its own FIFO queue; the client-side router
/// distributes the open-loop schedule per `cluster.fanout`, and broadcast legs merge
/// last-response-wins in the cross-shard collector.  When the cluster configures an
/// active hedge policy, a leg whose primary has not completed within the trigger delay
/// is reissued to the shard's next replica and the first response wins (the loser still
/// occupies its server — hedging is not cancellation).
///
/// # Errors
///
/// Returns [`HarnessError::Config`] if the load mode is closed-loop or `apps` does not
/// hold exactly one application per instance.
pub fn run_cluster_simulated(
    apps: &[Arc<dyn ServerApp>],
    factory: &mut dyn RequestFactory,
    config: &BenchmarkConfig,
    cluster: &ClusterConfig,
    cost_model: &dyn CostModel,
) -> Result<ClusterReport, HarnessError> {
    if !config.load.is_open() {
        return Err(HarnessError::Config(
            "the simulated runner requires an open-loop load mode".into(),
        ));
    }
    check_instances(apps, cluster)?;
    for app in apps {
        app.prepare();
    }

    let mut rng = seeded_rng(config.seed, 1);
    let times = config
        .load
        .schedule(&mut rng, config.total_requests())
        .ok_or_else(|| HarnessError::Internal("open-loop mode produced no schedule".into()))?;
    let shaper = TrafficShaper::from_times(times, 0, || factory.next_request());
    let arrivals = shaper.into_requests();

    let servers = config.worker_threads.max(1);
    let width = cluster.fanout_width();
    let plan = config.interference.clone();
    let hedge = cluster.active_hedge();
    let tied = cluster.active_tied();
    let tags = config.tags.clone();
    let mut collector = ClusterCollector::new(cluster.shards, config.warmup_requests as u64)
        .with_tags(config.tags.clone());
    let mut stations: Vec<Station> = (0..apps.len()).map(|_| Station::default()).collect();
    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    // Copies in service, by completion seq.  Only keyed lookups — never iterated — so
    // the map cannot perturb event ordering.
    let mut in_service: HashMap<u64, ServiceEntry> = HashMap::new();
    // Per-leg routing state; populated only when hedging or tied requests are active.
    let mut legs: HashMap<(u64, usize), Leg> = HashMap::new();
    let mut hedge_stats = HedgeStats::default();
    let mut removed: Vec<QueuedLeg> = Vec::new();
    let mut seq = 0u64;
    let mut next_arrival = 0usize;

    // Starts service for one leg copy on `instance` at virtual time `now`.
    let start_service = |instance: usize,
                         shard: usize,
                         is_hedge: bool,
                         request: Request,
                         enqueued_ns: u64,
                         now: u64,
                         stations: &mut Vec<Station>,
                         seq: &mut u64,
                         events: &mut BinaryHeap<Event>,
                         in_service: &mut HashMap<u64, ServiceEntry>|
     -> Result<(), HarnessError> {
        let app = apps
            .get(instance)
            .ok_or_else(|| HarnessError::Internal(format!("app index {instance} out of range")))?;
        let station = station_mut(stations, instance)?;
        station.busy += 1;
        let busy = station.busy;
        let response = app.handle(&request.payload);
        let base_ns = cost_model.service_time_ns(&response.work, busy);
        let service_ns = plan
            .adjusted_service_ns(instance, now, base_ns, request.id.0)
            .max(1);
        let record = RequestRecord {
            id: request.id,
            issued_ns: request.issued_ns,
            enqueued_ns,
            started_ns: now,
            completed_ns: now + service_ns,
            client_received_ns: now + service_ns,
        };
        *seq += 1;
        in_service.insert(
            *seq,
            ServiceEntry {
                instance,
                shard,
                is_hedge,
                record,
            },
        );
        events.push(Event {
            time_ns: now + service_ns,
            rank: 0,
            seq: *seq,
            what: EventKind::Completion,
        });
        Ok(())
    };

    loop {
        let next_arrival_req = arrivals.get(next_arrival);
        let next_arrival_time = next_arrival_req.map(|r| r.issued_ns);
        let next_event_time = events.peek().map(|e| e.time_ns);
        // Arrivals win ties, matching the single-server loop.
        let take_arrival = match (next_arrival_time, next_event_time) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(at), Some(et)) => at <= et,
        };

        if take_arrival {
            let Some(request) = next_arrival_req.cloned() else {
                break;
            };
            next_arrival += 1;
            let now = request.issued_ns;
            let shards = match cluster.fanout.route(&request.payload, cluster.shards) {
                Route::Shard(shard) => shard..shard + 1,
                Route::AllShards => 0..cluster.shards,
            };
            for shard in shards {
                let primary = cluster.route_replica(shard, request.id.0, config.seed, &|i| {
                    stations.get(i).map_or(0, |s| s.busy + s.waiting.len())
                });
                let secondary = cluster.secondary_instance(shard, primary);
                if let Some(policy) = hedge {
                    legs.insert(
                        (request.id.0, shard),
                        Leg {
                            resolved: false,
                            hedged: false,
                            outstanding: 0,
                            request: request.clone(),
                            primary,
                            secondary: primary,
                        },
                    );
                    seq += 1;
                    events.push(Event {
                        time_ns: now + policy.delay_ns,
                        rank: 1,
                        seq,
                        what: EventKind::HedgeCheck {
                            id: request.id.0,
                            shard,
                        },
                    });
                } else if tied {
                    legs.insert(
                        (request.id.0, shard),
                        Leg {
                            resolved: false,
                            hedged: true,
                            outstanding: 0,
                            request: request.clone(),
                            primary,
                            secondary,
                        },
                    );
                    hedge_stats.issued += 1;
                }
                let copies: &[(usize, bool)] = if tied {
                    &[(primary, false), (secondary, true)]
                } else {
                    &[(primary, false)]
                };
                let mut admitted = 0u8;
                for &(instance, is_hedge) in copies {
                    // A missing station is a routing bug; treat it as a full station
                    // so the fallible lookup below reports it.
                    let idle = stations.get(instance).is_some_and(|s| s.busy < servers);
                    if idle {
                        start_service(
                            instance,
                            shard,
                            is_hedge,
                            request.clone(),
                            now,
                            now,
                            &mut stations,
                            &mut seq,
                            &mut events,
                            &mut in_service,
                        )?;
                        station_mut(&mut stations, instance)?
                            .tracker
                            .on_push(now, 1);
                        admitted += 1;
                    } else {
                        let station = station_mut(&mut stations, instance)?;
                        if enqueue_or_shed(
                            &mut station.waiting,
                            &mut station.tracker,
                            &config.admission,
                            tags.as_deref(),
                            QueuedLeg {
                                request: request.clone(),
                                enqueued_ns: now,
                                shard,
                                is_hedge,
                            },
                            now,
                            &mut removed,
                        ) {
                            admitted += 1;
                        }
                    }
                    unwind_removed(&mut removed, &mut legs);
                }
                if let Some(leg) = legs.get_mut(&(request.id.0, shard)) {
                    leg.outstanding += admitted;
                    if tied && leg.outstanding == 0 {
                        // Both tied copies were shed at admission: the leg can never
                        // resolve; it surfaces as unmerged in the report.
                        legs.remove(&(request.id.0, shard));
                    }
                }
            }
        } else {
            let Some(event) = events.pop() else {
                break;
            };
            let t = event.time_ns;
            match event.what {
                EventKind::Completion => {
                    let entry = in_service.remove(&event.seq).ok_or_else(|| {
                        HarnessError::Internal(
                            "completion event for a request not in service".into(),
                        )
                    })?;
                    let (instance, shard, is_hedge) = (entry.instance, entry.shard, entry.is_hedge);
                    {
                        let station = station_mut(&mut stations, instance)?;
                        station.busy = station.busy.saturating_sub(1);
                    }
                    if hedge.is_some() || tied {
                        let key = (entry.record.id.0, shard);
                        let leg = legs.get_mut(&key).ok_or_else(|| {
                            HarnessError::Internal("completion for an untracked leg".into())
                        })?;
                        leg.outstanding = leg.outstanding.saturating_sub(1);
                        let first_response = !leg.resolved;
                        let mut sibling = None;
                        if first_response {
                            leg.resolved = true;
                            if is_hedge {
                                hedge_stats.wins += 1;
                            }
                            if tied {
                                sibling = Some(if instance == leg.primary {
                                    leg.secondary
                                } else {
                                    leg.primary
                                });
                            }
                        }
                        if first_response {
                            let _ = collector.record_leg(shard, entry.record, width);
                        }
                        // Tied-request cancellation: the loser is retracted if it is
                        // still waiting in the sibling's queue (an in-service loser
                        // runs to completion, exactly like a hedge loser).
                        if let Some(sibling) = sibling {
                            let sib = station_mut(&mut stations, sibling)?;
                            if let Some(pos) = sib
                                .waiting
                                .iter()
                                .position(|q| q.request.id.0 == key.0 && q.shard == key.1)
                            {
                                sib.waiting.remove(pos);
                                if let Some(leg) = legs.get_mut(&key) {
                                    leg.outstanding = leg.outstanding.saturating_sub(1);
                                }
                            }
                        }
                        if legs
                            .get(&key)
                            .is_some_and(|l| l.outstanding == 0 && l.resolved)
                        {
                            legs.remove(&key);
                        }
                    } else {
                        let _ = collector.record_leg(shard, entry.record, width);
                    }
                    let popped = {
                        let station = station_mut(&mut stations, instance)?;
                        pop_fresh(
                            &mut station.waiting,
                            &mut station.tracker,
                            &config.admission,
                            t,
                            &mut removed,
                        )
                    };
                    if let Some(queued) = popped {
                        start_service(
                            instance,
                            queued.shard,
                            queued.is_hedge,
                            queued.request,
                            queued.enqueued_ns,
                            t,
                            &mut stations,
                            &mut seq,
                            &mut events,
                            &mut in_service,
                        )?;
                    }
                    unwind_removed(&mut removed, &mut legs);
                }
                EventKind::HedgeCheck { id, shard } => {
                    let issue = match legs.get_mut(&(id, shard)) {
                        Some(leg) if !leg.resolved && !leg.hedged => {
                            leg.hedged = true;
                            let alt = cluster.secondary_instance(shard, leg.primary);
                            leg.secondary = alt;
                            Some((leg.request.clone(), alt))
                        }
                        _ => None,
                    };
                    if let Some((copy, alt)) = issue {
                        let idle = stations.get(alt).is_some_and(|s| s.busy < servers);
                        let admitted = if idle {
                            start_service(
                                alt,
                                shard,
                                true,
                                copy,
                                t,
                                t,
                                &mut stations,
                                &mut seq,
                                &mut events,
                                &mut in_service,
                            )?;
                            station_mut(&mut stations, alt)?.tracker.on_push(t, 1);
                            true
                        } else {
                            let station = station_mut(&mut stations, alt)?;
                            enqueue_or_shed(
                                &mut station.waiting,
                                &mut station.tracker,
                                &config.admission,
                                tags.as_deref(),
                                QueuedLeg {
                                    request: copy,
                                    enqueued_ns: t,
                                    shard,
                                    is_hedge: true,
                                },
                                t,
                                &mut removed,
                            )
                        };
                        unwind_removed(&mut removed, &mut legs);
                        if admitted {
                            hedge_stats.issued += 1;
                            if let Some(leg) = legs.get_mut(&(id, shard)) {
                                leg.outstanding += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    let queue_summaries: Vec<QueueSummary> = stations
        .iter()
        .map(|s| s.tracker.summary(config.admission.label()))
        .collect();
    let mut report = build_cluster_report(
        apps.first().map_or("", |a| a.name()),
        "simulated",
        config,
        cluster,
        &collector,
        (hedge.is_some() || tied).then_some(hedge_stats),
    );
    report.cluster.queue_depth = QueueSummary::aggregate(&queue_summaries);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{EchoApp, InstructionRateModel};
    use crate::config::BenchmarkConfig;

    fn app() -> Arc<dyn ServerApp> {
        Arc::new(EchoApp {
            spin_iters: 100_000, // ~100k "instructions" per request
        })
    }

    #[test]
    fn simulated_run_is_deterministic() {
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let config = BenchmarkConfig::new(2_000.0, 500)
            .with_warmup(50)
            .with_seed(3);
        let mut factory = || b"sim".to_vec();
        let a = run_simulated(&app, &mut factory, &config, &model).expect("simulated run");
        let mut factory = || b"sim".to_vec();
        let b = run_simulated(&app, &mut factory, &config, &model).expect("simulated run");
        assert_eq!(a.sojourn.p95_ns, b.sojourn.p95_ns);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.requests, 500);
    }

    #[test]
    fn latency_grows_with_load_in_simulation() {
        let app = app();
        // 100k instructions x 1 ns = 100 us service => saturation ~10k QPS.
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let mut factory = || b"x".to_vec();
        let low = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(1_000.0, 2_000).with_seed(7),
            &model,
        )
        .expect("simulated run");
        let mut factory = || b"x".to_vec();
        let high = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(9_000.0, 2_000).with_seed(7),
            &model,
        )
        .expect("simulated run");
        assert!(
            high.sojourn.p95_ns > 2 * low.sojourn.p95_ns,
            "p95 at 90% load ({}) should far exceed p95 at 10% load ({})",
            high.sojourn.p95_ns,
            low.sojourn.p95_ns
        );
    }

    #[test]
    fn more_servers_reduce_queueing_at_same_total_load() {
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let mut factory = || b"x".to_vec();
        let one = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(8_000.0, 2_000)
                .with_threads(1)
                .with_seed(5),
            &model,
        )
        .expect("simulated run");
        let mut factory = || b"x".to_vec();
        let four = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(8_000.0, 2_000)
                .with_threads(4)
                .with_seed(5),
            &model,
        )
        .expect("simulated run");
        assert!(
            four.sojourn.p95_ns < one.sojourn.p95_ns,
            "4 servers p95 {} should be below 1 server p95 {}",
            four.sojourn.p95_ns,
            one.sojourn.p95_ns
        );
    }

    #[test]
    fn simulated_cluster_is_deterministic_and_amplifies_the_tail() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let run = |shards: usize| {
            let apps: Vec<Arc<dyn ServerApp>> = (0..shards)
                .map(|_| {
                    Arc::new(EchoApp {
                        spin_iters: 100_000,
                    }) as Arc<dyn ServerApp>
                })
                .collect();
            let cluster = ClusterConfig::new(shards, FanoutPolicy::Broadcast);
            let mut factory = || b"c".to_vec();
            let config = BenchmarkConfig::new(5_000.0, 1_000)
                .with_warmup(100)
                .with_seed(21);
            run_cluster_simulated(&apps, &mut factory, &config, &cluster, &model).unwrap()
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(a.cluster.sojourn.p99_ns, b.cluster.sojourn.p99_ns);
        assert_eq!(a.per_shard[2].sojourn.p95_ns, b.per_shard[2].sojourn.p95_ns);
        assert_eq!(a.cluster.requests, 1_000);

        // Broadcast fan-out: the cluster tail waits for the slowest of the shards, so it
        // is at least any single shard's tail and amplification never drops below 1.
        assert!(a.cluster.sojourn.p99_ns >= a.max_shard_p99_ns());
        assert!(a.p99_amplification() >= 1.0);

        // One "shard" fanned out is just a single server: no amplification.
        let single = run(1);
        assert_eq!(
            single.cluster.sojourn.p99_ns,
            single.per_shard[0].sojourn.p99_ns
        );
    }

    #[test]
    fn simulated_cluster_routed_load_splits_across_shards() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| {
                Arc::new(EchoApp {
                    spin_iters: 100_000,
                }) as Arc<dyn ServerApp>
            })
            .collect();
        let cluster = ClusterConfig::new(4, FanoutPolicy::HashKey { offset: 0, len: 8 });
        let mut n = 0u64;
        let mut factory = move || {
            n += 1;
            n.to_le_bytes().to_vec()
        };
        let config = BenchmarkConfig::new(8_000.0, 2_000)
            .with_warmup(0)
            .with_seed(9);
        let report = run_cluster_simulated(&apps, &mut factory, &config, &cluster, &model).unwrap();
        let shard_total: u64 = report.per_shard.iter().map(|r| r.requests).sum();
        assert_eq!(shard_total, report.cluster.requests);
        assert_eq!(report.cluster.requests, 2_000);
        for shard in &report.per_shard {
            assert!(
                shard.requests > 300,
                "hash routing should spread load, shard got {}",
                shard.requests
            );
        }
        // Sharding a single-key workload 4 ways quarters each server's load, so the
        // cluster tail sits far below a single server handling the full rate.
        let mut single_factory = {
            let mut n = 0u64;
            move || {
                n += 1;
                n.to_le_bytes().to_vec()
            }
        };
        let one: Arc<dyn ServerApp> = Arc::new(EchoApp {
            spin_iters: 100_000,
        });
        let single =
            run_simulated(&one, &mut single_factory, &config, &model).expect("simulated run");
        assert!(report.cluster.sojourn.p99_ns < single.sojourn.p99_ns);
    }

    #[test]
    fn simulated_cluster_replication_spreads_single_key_load() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let make_apps = |n: usize| -> Vec<Arc<dyn ServerApp>> {
            (0..n)
                .map(|_| {
                    Arc::new(EchoApp {
                        spin_iters: 100_000,
                    }) as Arc<dyn ServerApp>
                })
                .collect()
        };
        let config = BenchmarkConfig::new(8_000.0, 1_500)
            .with_warmup(0)
            .with_seed(4);
        let mut factory = || vec![0u8; 9]; // constant key: everything routes to one shard
        let unreplicated = run_cluster_simulated(
            &make_apps(2),
            &mut factory,
            &config,
            &ClusterConfig::new(2, FanoutPolicy::ycsb()),
            &model,
        )
        .unwrap();
        let mut factory = || vec![0u8; 9];
        let replicated = run_cluster_simulated(
            &make_apps(4),
            &mut factory,
            &config,
            &ClusterConfig::new(2, FanoutPolicy::ycsb()).with_replication(2),
            &model,
        )
        .unwrap();
        assert_eq!(replicated.replication, 2);
        // Two replicas split the hot shard's load, so the tail must improve.
        assert!(
            replicated.cluster.sojourn.p99_ns < unreplicated.cluster.sojourn.p99_ns,
            "replicated p99 {} vs unreplicated p99 {}",
            replicated.cluster.sojourn.p99_ns,
            unreplicated.cluster.sojourn.p99_ns
        );
    }

    #[test]
    fn virtual_time_spans_do_not_depend_on_host_speed() {
        // At 1000 QPS, 1000 requests span ~1 virtual second regardless of how fast the
        // host executes the handler functionally.
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 0.5,
        };
        let mut factory = || b"x".to_vec();
        let report = run_simulated(
            &app,
            &mut factory,
            &BenchmarkConfig::new(1_000.0, 1_000)
                .with_warmup(0)
                .with_seed(11),
            &model,
        )
        .expect("simulated run");
        let span_s = report.duration_ns as f64 / 1e9;
        assert!((span_s - 1.0).abs() < 0.15, "span = {span_s} s");
    }

    #[test]
    fn slow_shard_interference_inflates_only_its_window() {
        use crate::interference::InterferencePlan;
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        // Light load (1k QPS, 100 us service): no queueing, sojourn ≈ service.  Slowing
        // the server 10x between 0.2 s and 0.4 s must lift the max far above the clean
        // run's, while the p50 (dominated by un-faulted time) barely moves.
        let base_config = BenchmarkConfig::new(1_000.0, 1_000)
            .with_warmup(0)
            .with_seed(13);
        let mut factory = || b"x".to_vec();
        let clean = run_simulated(&app, &mut factory, &base_config, &model).expect("simulated run");
        let faulted_config =
            base_config
                .clone()
                .with_interference(InterferencePlan::none().slow_instance(
                    0,
                    200_000_000,
                    400_000_000,
                    10.0,
                ));
        let mut factory = || b"x".to_vec();
        let faulted =
            run_simulated(&app, &mut factory, &faulted_config, &model).expect("simulated run");
        assert!(
            faulted.sojourn.max_ns >= clean.sojourn.max_ns * 5,
            "faulted max {} vs clean max {}",
            faulted.sojourn.max_ns,
            clean.sojourn.max_ns
        );
        assert!(faulted.sojourn.p50_ns < clean.sojourn.p50_ns * 2);
        // Determinism holds with interference active.
        let mut factory = || b"x".to_vec();
        let again =
            run_simulated(&app, &mut factory, &faulted_config, &model).expect("simulated run");
        assert_eq!(again.sojourn.p99_ns, faulted.sojourn.p99_ns);
    }

    #[test]
    fn tied_requests_beat_a_slow_replica_and_stay_deterministic() {
        use crate::config::{ClusterConfig, FanoutPolicy};
        use crate::interference::InterferencePlan;
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let make_apps = || -> Vec<Arc<dyn ServerApp>> {
            (0..4)
                .map(|_| {
                    Arc::new(EchoApp {
                        spin_iters: 100_000,
                    }) as Arc<dyn ServerApp>
                })
                .collect()
        };
        // Same layout as the hedging test: 2x2 broadcast, instance 1 slowed 20x.
        // Tied requests issue both copies up front, so the healthy replica answers
        // every leg without waiting for a trigger delay.
        let config = BenchmarkConfig::new(2_000.0, 800)
            .with_warmup(0)
            .with_seed(17)
            .with_interference(InterferencePlan::none().slow_instance(1, 0, u64::MAX, 20.0));
        let base = ClusterConfig::new(2, FanoutPolicy::Broadcast).with_replication(2);
        let mut factory = || b"h".to_vec();
        let untied =
            run_cluster_simulated(&make_apps(), &mut factory, &config, &base, &model).unwrap();
        let tied_cluster = base.with_tied(true);
        let mut factory = || b"h".to_vec();
        let tied =
            run_cluster_simulated(&make_apps(), &mut factory, &config, &tied_cluster, &model)
                .unwrap();
        let stats = tied.hedge.expect("tied stats ride the hedge report field");
        assert_eq!(
            stats.issued,
            2 * 800,
            "every broadcast leg issues one tied copy"
        );
        assert!(stats.wins > 0, "some secondary copies must win");
        assert!(
            tied.cluster.sojourn.p99_ns < untied.cluster.sojourn.p99_ns / 2,
            "tied p99 {} should be far below untied p99 {}",
            tied.cluster.sojourn.p99_ns,
            untied.cluster.sojourn.p99_ns
        );
        assert_eq!(
            tied.cluster.requests, 800,
            "first response resolves every leg"
        );
        // Bit-for-bit deterministic.
        let mut factory = || b"h".to_vec();
        let again =
            run_cluster_simulated(&make_apps(), &mut factory, &config, &tied_cluster, &model)
                .unwrap();
        assert_eq!(again.cluster.sojourn.p99_ns, tied.cluster.sojourn.p99_ns);
        assert_eq!(again.hedge, tied.hedge);
    }

    #[test]
    fn load_aware_selectors_route_around_a_slow_replica() {
        use crate::config::{ClusterConfig, FanoutPolicy, ReplicaSelector};
        use crate::interference::InterferencePlan;
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let make_apps = || -> Vec<Arc<dyn ServerApp>> {
            (0..4)
                .map(|_| {
                    Arc::new(EchoApp {
                        spin_iters: 100_000,
                    }) as Arc<dyn ServerApp>
                })
                .collect()
        };
        let config = BenchmarkConfig::new(2_000.0, 800)
            .with_warmup(0)
            .with_seed(17)
            .with_interference(InterferencePlan::none().slow_instance(1, 0, u64::MAX, 20.0));
        let base = ClusterConfig::new(2, FanoutPolicy::Broadcast).with_replication(2);
        let run = |selector: ReplicaSelector| {
            let mut factory = || b"s".to_vec();
            run_cluster_simulated(
                &make_apps(),
                &mut factory,
                &config,
                &base.clone().with_selector(selector),
                &model,
            )
            .unwrap()
        };
        let round_robin = run(ReplicaSelector::RoundRobin);
        let least_loaded = run(ReplicaSelector::LeastLoaded);
        let p2c = run(ReplicaSelector::PowerOfTwo);
        // Round-robin keeps feeding the 20x replica; load-aware selectors observe its
        // backlog and shift legs to the healthy one, collapsing the tail.
        assert!(
            least_loaded.cluster.sojourn.p99_ns < round_robin.cluster.sojourn.p99_ns / 2,
            "least-loaded p99 {} vs round-robin p99 {}",
            least_loaded.cluster.sojourn.p99_ns,
            round_robin.cluster.sojourn.p99_ns
        );
        assert!(
            p2c.cluster.sojourn.p99_ns < round_robin.cluster.sojourn.p99_ns,
            "p2c p99 {} vs round-robin p99 {}",
            p2c.cluster.sojourn.p99_ns,
            round_robin.cluster.sojourn.p99_ns
        );
        // Determinism holds for the seeded selectors.
        let again = run(ReplicaSelector::PowerOfTwo);
        assert_eq!(again.cluster.sojourn.p99_ns, p2c.cluster.sojourn.p99_ns);
    }

    #[test]
    fn deadline_shedding_caps_the_tail_and_keeps_accounting_exact() {
        // Overload a single simulated server (100 us service at ~2x capacity): the
        // unbounded queue grows without bound, while deadline shedding keeps the
        // served tail near the SLO and counts every shed request as a drop.
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let base = BenchmarkConfig::new(20_000.0, 2_000)
            .with_warmup(0)
            .with_seed(23);
        let mut factory = || b"d".to_vec();
        let unbounded = run_simulated(&app, &mut factory, &base, &model).expect("simulated run");
        let shed_config = base.clone().with_admission(AdmissionPolicy::DropDeadline {
            capacity: 64,
            slo_ns: 2_000_000,
        });
        let mut factory = || b"d".to_vec();
        let shed = run_simulated(&app, &mut factory, &shed_config, &model).expect("simulated run");
        assert!(shed.queue_depth.dropped > 0, "overload must shed");
        assert_eq!(
            shed.queue_depth.accepted + shed.queue_depth.dropped,
            shed_config.total_requests() as u64,
            "accepted + dropped must equal offered"
        );
        assert_eq!(shed.requests, shed.queue_depth.accepted);
        assert!(
            shed.sojourn.p99_ns < unbounded.sojourn.p99_ns / 4,
            "shed p99 {} should collapse vs unbounded p99 {}",
            shed.sojourn.p99_ns,
            unbounded.sojourn.p99_ns
        );
        // Deterministic.
        let mut factory = || b"d".to_vec();
        let again = run_simulated(&app, &mut factory, &shed_config, &model).expect("simulated run");
        assert_eq!(again.sojourn.p99_ns, shed.sojourn.p99_ns);
        assert_eq!(again.queue_depth.dropped, shed.queue_depth.dropped);
    }

    #[test]
    fn drop_accounting_balances_offered_load_under_overload() {
        // The Drop-policy audit pin: every offered request is either accepted or
        // dropped, dropped requests never enter the sojourn distribution, and the
        // whole breakdown is deterministic.
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let config = BenchmarkConfig::new(20_000.0, 2_000)
            .with_warmup(100)
            .with_seed(29)
            .with_admission(AdmissionPolicy::Drop { capacity: 16 });
        let mut factory = || b"o".to_vec();
        let report = run_simulated(&app, &mut factory, &config, &model).expect("simulated run");
        let q = &report.queue_depth;
        assert!(q.dropped > 0);
        assert_eq!(q.accepted + q.dropped, config.total_requests() as u64);
        // Only served requests appear in the distribution (warmup excluded).
        assert!(
            report.requests <= q.accepted,
            "only accepted requests can be measured"
        );
        let mut factory = || b"o".to_vec();
        let again = run_simulated(&app, &mut factory, &config, &model).expect("simulated run");
        assert_eq!(again.queue_depth.accepted, q.accepted);
        assert_eq!(again.queue_depth.dropped, q.dropped);
    }

    #[test]
    fn priority_shedding_protects_the_high_class_under_overload() {
        use crate::collector::RequestTags;
        // Alternate request classes 0/1; under overload with a Priority queue the
        // batch class (1) absorbs the shedding.
        let app = app();
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let total = 2_200usize; // 200 warmup + 2000 measured
        let classes: Vec<u16> = (0..total).map(|i| (i % 2) as u16).collect();
        let tags = Arc::new(RequestTags::new(
            vec!["interactive".into(), "batch".into()],
            vec!["all".into()],
            classes,
            vec![0; total],
        ));
        let config = BenchmarkConfig::new(20_000.0, 2_000)
            .with_warmup(200)
            .with_seed(31)
            .with_tags(tags)
            .with_admission(AdmissionPolicy::Priority { capacity: 32 });
        let mut factory = || b"p".to_vec();
        let report = run_simulated(&app, &mut factory, &config, &model).expect("simulated run");
        let q = &report.queue_depth;
        assert!(q.dropped > 0, "overload must shed");
        assert_eq!(q.accepted + q.dropped, config.total_requests() as u64);
        let interactive = &report.per_class[0];
        let batch = &report.per_class[1];
        assert!(
            interactive.sojourn.count > batch.sojourn.count,
            "priority shedding must serve more interactive ({}) than batch ({})",
            interactive.sojourn.count,
            batch.sojourn.count
        );
    }

    #[test]
    fn hedging_rescues_legs_from_a_slow_replica() {
        use crate::config::{ClusterConfig, FanoutPolicy, HedgePolicy};
        use crate::interference::InterferencePlan;
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let make_apps = || -> Vec<Arc<dyn ServerApp>> {
            (0..4)
                .map(|_| {
                    Arc::new(EchoApp {
                        spin_iters: 100_000,
                    }) as Arc<dyn ServerApp>
                })
                .collect()
        };
        // 2 shards x 2 replicas, broadcast; instance 1 (shard 0, replica 1) is 20x
        // slower for the whole run.  Unhedged, the odd-id legs it serves dominate the
        // tail; hedging at 300 us reissues them to the healthy replica 0.
        let config = BenchmarkConfig::new(2_000.0, 800)
            .with_warmup(0)
            .with_seed(17)
            .with_interference(InterferencePlan::none().slow_instance(1, 0, u64::MAX, 20.0));
        let base = ClusterConfig::new(2, FanoutPolicy::Broadcast).with_replication(2);
        let mut factory = || b"h".to_vec();
        let unhedged =
            run_cluster_simulated(&make_apps(), &mut factory, &config, &base, &model).unwrap();
        assert_eq!(unhedged.hedge, None);
        let hedged_cluster = base.with_hedge(HedgePolicy::after_ns(300_000));
        let mut factory = || b"h".to_vec();
        let hedged =
            run_cluster_simulated(&make_apps(), &mut factory, &config, &hedged_cluster, &model)
                .unwrap();
        let stats = hedged.hedge.expect("hedge stats must be reported");
        assert!(stats.issued > 0, "the slow replica must trigger hedges");
        assert!(stats.wins > 0, "some hedges must win");
        assert!(stats.wins <= stats.issued);
        assert!(
            hedged.cluster.sojourn.p99_ns < unhedged.cluster.sojourn.p99_ns / 2,
            "hedged p99 {} should be far below unhedged p99 {}",
            hedged.cluster.sojourn.p99_ns,
            unhedged.cluster.sojourn.p99_ns
        );
        // Hedged runs stay bit-for-bit deterministic.
        let mut factory = || b"h".to_vec();
        let again =
            run_cluster_simulated(&make_apps(), &mut factory, &config, &hedged_cluster, &model)
                .unwrap();
        assert_eq!(again.cluster.sojourn.p99_ns, hedged.cluster.sojourn.p99_ns);
        assert_eq!(again.hedge, hedged.hedge);
    }
}
