//! An integer high-dynamic-range histogram.
//!
//! The structure follows the classic HdrHistogram layout referenced by the paper: values
//! are bucketed into power-of-two *buckets*, each split into a fixed number of linear
//! *sub-buckets*, so that every recorded value is represented with a bounded relative
//! error determined by the requested number of significant decimal digits.  Space grows
//! logarithmically with the tracked range: covering 1 µs to 1000 s at three significant
//! digits takes a few thousand `u64` counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned when constructing or merging histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// The requested significant digits were outside the supported `1..=5` range.
    BadSignificantDigits(u8),
    /// `lowest_discernible` must be at least 1 and no larger than `highest_trackable / 2`.
    BadRange {
        /// Requested smallest discernible value.
        lowest: u64,
        /// Requested largest trackable value.
        highest: u64,
    },
    /// Attempted to merge histograms with incompatible bucket configurations.
    IncompatibleMerge,
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::BadSignificantDigits(d) => {
                write!(f, "significant digits must be in 1..=5, got {d}")
            }
            HistogramError::BadRange { lowest, highest } => write!(
                f,
                "invalid histogram range: lowest={lowest}, highest={highest} (need 1 <= lowest and lowest * 2 <= highest)"
            ),
            HistogramError::IncompatibleMerge => {
                write!(f, "histograms have incompatible configurations")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// A high-dynamic-range histogram of `u64` values (typically latencies in nanoseconds).
///
/// The histogram records values between `lowest_discernible` and `highest_trackable`
/// while preserving `significant_digits` decimal digits of precision.  Values above the
/// trackable maximum are saturated into the top bucket and counted in
/// [`HdrHistogram::saturated`].
///
/// # Example
///
/// ```
/// # use tailbench_histogram::HdrHistogram;
/// let mut h = HdrHistogram::new(1_000, 10_000_000_000, 3).unwrap();
/// h.record(1_500_000);
/// h.record_n(3_000_000, 10);
/// assert_eq!(h.len(), 11);
/// assert!(h.max() >= 3_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdrHistogram {
    lowest_discernible: u64,
    highest_trackable: u64,
    significant_digits: u8,
    unit_magnitude: u32,
    sub_bucket_half_count_magnitude: u32,
    sub_bucket_count: u32,
    sub_bucket_half_count: u32,
    sub_bucket_mask: u64,
    bucket_count: u32,
    counts: Vec<u64>,
    total: u64,
    saturated: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl HdrHistogram {
    /// Creates a histogram covering `[lowest_discernible, highest_trackable]` with the
    /// given number of significant decimal digits (1–5).
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::BadSignificantDigits`] or [`HistogramError::BadRange`]
    /// when the parameters are out of range.
    pub fn new(
        lowest_discernible: u64,
        highest_trackable: u64,
        significant_digits: u8,
    ) -> Result<Self, HistogramError> {
        if !(1..=5).contains(&significant_digits) {
            return Err(HistogramError::BadSignificantDigits(significant_digits));
        }
        if lowest_discernible < 1 || highest_trackable < lowest_discernible.saturating_mul(2) {
            return Err(HistogramError::BadRange {
                lowest: lowest_discernible,
                highest: highest_trackable,
            });
        }

        let largest_value_with_single_unit_resolution =
            10u64.pow(u32::from(significant_digits)).saturating_mul(2);
        let sub_bucket_count_magnitude = ceil_log2(largest_value_with_single_unit_resolution);
        let sub_bucket_half_count_magnitude = sub_bucket_count_magnitude.max(1) - 1;
        let unit_magnitude = floor_log2(lowest_discernible);
        let sub_bucket_count = 1u32 << sub_bucket_half_count_magnitude.saturating_add(1);
        let sub_bucket_half_count = sub_bucket_count / 2;
        let sub_bucket_mask = (u64::from(sub_bucket_count) - 1) << unit_magnitude;

        // Determine how many power-of-two buckets are needed to cover highest_trackable.
        let mut smallest_untrackable = u64::from(sub_bucket_count) << unit_magnitude;
        let mut bucket_count = 1u32;
        while smallest_untrackable <= highest_trackable {
            if smallest_untrackable > u64::MAX / 2 {
                bucket_count = bucket_count.saturating_add(1);
                break;
            }
            smallest_untrackable <<= 1;
            bucket_count = bucket_count.saturating_add(1);
        }

        let counts_len = (bucket_count
            .saturating_add(1)
            .saturating_mul(sub_bucket_half_count)) as usize;
        Ok(HdrHistogram {
            lowest_discernible,
            highest_trackable,
            significant_digits,
            unit_magnitude,
            sub_bucket_half_count_magnitude,
            sub_bucket_count,
            sub_bucket_half_count,
            sub_bucket_mask,
            bucket_count,
            counts: vec![0; counts_len],
            total: 0,
            saturated: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        })
    }

    /// Creates the default latency histogram used throughout the suite: nanosecond
    /// resolution from 1 ns to 4000 s with 3 significant digits.
    #[must_use]
    pub fn for_latencies() -> Self {
        // 4000 s in ns fits comfortably in u64; unwrap is safe for these constants.
        HdrHistogram::new(1, 4_000_000_000_000, 3).expect("constant configuration is valid")
    }

    /// The configured smallest discernible value.
    #[must_use]
    pub fn lowest_discernible(&self) -> u64 {
        self.lowest_discernible
    }

    /// The configured largest trackable value.
    #[must_use]
    pub fn highest_trackable(&self) -> u64 {
        self.highest_trackable
    }

    /// The configured number of significant decimal digits.
    #[must_use]
    pub fn significant_digits(&self) -> u8 {
        self.significant_digits
    }

    /// Number of counter slots allocated (useful for validating the logarithmic-space
    /// claim in the paper).
    #[must_use]
    pub fn bucket_slots(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded values (including saturated ones).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Returns `true` if no values have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of values that exceeded the trackable maximum and were saturated.
    #[must_use]
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Smallest recorded value, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (exact, not bucketed), or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Records a single value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `count` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let clamped = if value > self.highest_trackable {
            self.saturated = self.saturated.saturating_add(count);
            self.highest_trackable
        } else {
            value
        };
        let idx = self.counts_index_for(clamped);
        self.counts[idx] = self.counts[idx].saturating_add(count);
        self.total = self.total.saturating_add(count);
        self.sum = self
            .sum
            .saturating_add(u128::from(value).saturating_mul(u128::from(count)));
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded values that fall in the same equivalent-value range as `value`.
    #[must_use]
    pub fn count_at(&self, value: u64) -> u64 {
        if value > self.highest_trackable {
            return 0;
        }
        self.counts[self.counts_index_for(value)]
    }

    /// The value at quantile `q` (`0.0..=1.0`), e.g. `0.95` for the 95th percentile.
    ///
    /// Returns 0 for an empty histogram. The returned value is the highest value that is
    /// equivalent (within the configured precision) to the true quantile sample.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let mut target = (q * self.total as f64).ceil() as u64;
        if target > self.total {
            target = self.total;
        }
        if target == 0 {
            target = 1;
        }
        let mut running = 0u64;
        for idx in 0..self.counts.len() {
            let c = self.counts[idx];
            if c == 0 {
                continue;
            }
            running = running.saturating_add(c);
            if running >= target {
                let v = self.highest_equivalent(self.value_for_index(idx));
                return v.min(self.max);
            }
        }
        self.max
    }

    /// Convenience alias for [`value_at_quantile`](Self::value_at_quantile) taking a
    /// percentile in `0.0..=100.0`.
    #[must_use]
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        self.value_at_quantile(p / 100.0)
    }

    /// Merges another histogram into this one.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::IncompatibleMerge`] if the two histograms were created
    /// with different range or precision parameters.
    pub fn merge(&mut self, other: &HdrHistogram) -> Result<(), HistogramError> {
        if self.lowest_discernible != other.lowest_discernible
            || self.highest_trackable != other.highest_trackable
            || self.significant_digits != other.significant_digits
        {
            return Err(HistogramError::IncompatibleMerge);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.total = self.total.saturating_add(other.total);
        self.saturated = self.saturated.saturating_add(other.saturated);
        self.sum = self.sum.saturating_add(other.sum);
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    /// Resets all counts while keeping the configuration.
    pub fn clear(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
        self.total = 0;
        self.saturated = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }

    /// Iterates over `(bucket_value, count)` pairs for non-empty buckets, in increasing
    /// value order. `bucket_value` is the highest value equivalent to that bucket.
    pub fn iter_recorded(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..self.counts.len()).filter_map(move |idx| {
            let c = self.counts[idx];
            if c == 0 {
                None
            } else {
                Some((self.highest_equivalent(self.value_for_index(idx)), c))
            }
        })
    }

    /// Returns the cumulative distribution as `(value, cumulative_fraction)` pairs over
    /// the non-empty buckets. Useful for rendering the service-time CDFs of Fig. 2.
    #[must_use]
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut running = 0u64;
        for (value, count) in self.iter_recorded() {
            running = running.saturating_add(count);
            out.push((value, running as f64 / self.total as f64));
        }
        out
    }

    /// The worst-case relative error of any value recorded in this histogram, as implied
    /// by the configured number of significant digits.
    #[must_use]
    pub fn max_relative_error(&self) -> f64 {
        1.0 / 10f64.powi(i32::from(self.significant_digits))
    }

    // --- index math -------------------------------------------------------------------
    //
    // All width changes go through `u32::try_from` (infallible for in-range histogram
    // indices) and all additive index math is saturating: an out-of-contract input can
    // pin to the extreme but can never wrap into a different bucket.

    fn bucket_index(&self, value: u64) -> u32 {
        let pow2ceiling = 64 - (value | self.sub_bucket_mask).leading_zeros();
        pow2ceiling - self.unit_magnitude - self.sub_bucket_half_count_magnitude.saturating_add(1)
    }

    fn sub_bucket_index(&self, value: u64, bucket_index: u32) -> u32 {
        let shifted = value >> bucket_index.saturating_add(self.unit_magnitude);
        u32::try_from(shifted).unwrap_or(u32::MAX)
    }

    fn counts_index(&self, bucket_index: u32, sub_bucket_index: u32) -> usize {
        let bucket_base = bucket_index.saturating_add(1) << self.sub_bucket_half_count_magnitude;
        (bucket_base.saturating_add(sub_bucket_index) - self.sub_bucket_half_count) as usize
    }

    fn counts_index_for(&self, value: u64) -> usize {
        let bucket = self.bucket_index(value);
        let sub = self.sub_bucket_index(value, bucket);
        self.counts_index(bucket, sub)
    }

    fn value_for_index(&self, index: usize) -> u64 {
        let index = index as u64;
        let half = u64::from(self.sub_bucket_half_count);
        let shifted = index >> self.sub_bucket_half_count_magnitude;
        // Indices below `half` describe bucket 0's lower half directly; all others
        // sit `half` sub-buckets into bucket `shifted - 1`.
        let bucket_index = shifted.saturating_sub(1);
        let sub_bucket_index = if shifted == 0 {
            index & (half - 1)
        } else {
            (index & (half - 1)).saturating_add(half)
        };
        sub_bucket_index << bucket_index.saturating_add(u64::from(self.unit_magnitude))
    }

    fn size_of_equivalent_range(&self, value: u64) -> u64 {
        let bucket_index = self.bucket_index(value);
        1u64 << self.unit_magnitude.saturating_add(bucket_index)
    }

    fn highest_equivalent(&self, value: u64) -> u64 {
        let range = self.size_of_equivalent_range(value);
        let lowest = value & !(range - 1);
        lowest.saturating_add(range) - 1
    }
}

/// `floor(log2(v))` for `v >= 1`, in pure integer math — no float round-trip whose
/// rounding could shift a magnitude by one.
fn floor_log2(v: u64) -> u32 {
    63 - v.max(1).leading_zeros()
}

/// `ceil(log2(v))` for `v >= 1`, in pure integer math.
fn ceil_log2(v: u64) -> u32 {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = HdrHistogram::for_latencies();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.95), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            HdrHistogram::new(1, 100, 0),
            Err(HistogramError::BadSignificantDigits(0))
        ));
        assert!(matches!(
            HdrHistogram::new(1, 100, 6),
            Err(HistogramError::BadSignificantDigits(6))
        ));
        assert!(matches!(
            HdrHistogram::new(0, 100, 3),
            Err(HistogramError::BadRange { .. })
        ));
        assert!(matches!(
            HdrHistogram::new(100, 150, 3),
            Err(HistogramError::BadRange { .. })
        ));
    }

    #[test]
    fn records_and_counts_values() {
        let mut h = HdrHistogram::new(1, 1_000_000, 3).unwrap();
        h.record(100);
        h.record_n(5_000, 3);
        assert_eq!(h.len(), 4);
        assert_eq!(h.count_at(100), 1);
        assert_eq!(h.count_at(5_000), 3);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 5_000);
        let expected_mean = (100.0 + 3.0 * 5_000.0) / 4.0;
        assert!((h.mean() - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn single_value_quantiles_are_that_value() {
        let mut h = HdrHistogram::new(1, 3_600_000_000_000, 3).unwrap();
        h.record(123_456_789);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let v = h.value_at_quantile(q);
            let err = (v as f64 - 123_456_789.0).abs() / 123_456_789.0;
            assert!(err <= 0.001, "q={q} v={v}");
        }
    }

    #[test]
    fn quantiles_match_exact_for_uniform_ramp() {
        let mut h = HdrHistogram::new(1, 10_000_000, 3).unwrap();
        let mut values: Vec<u64> = (1..=10_000u64).map(|i| i * 97).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = h.value_at_quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 0.002,
                "q={q} exact={exact} approx={approx} err={err}"
            );
        }
    }

    #[test]
    fn saturates_values_above_max() {
        let mut h = HdrHistogram::new(1, 1_000, 2).unwrap();
        h.record(5_000);
        assert_eq!(h.saturated(), 1);
        assert_eq!(h.len(), 1);
        assert!(h.value_at_quantile(1.0) >= 1_000);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = HdrHistogram::new(1, 1_000_000, 3).unwrap();
        let mut b = HdrHistogram::new(1, 1_000_000, 3).unwrap();
        a.record_n(100, 5);
        b.record_n(200, 7);
        b.record(999_999);
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 13);
        assert_eq!(a.count_at(100), 5);
        assert_eq!(a.count_at(200), 7);
        assert_eq!(a.min(), 100);
        assert!(a.max() >= 999_000);
    }

    #[test]
    fn merge_rejects_incompatible() {
        let mut a = HdrHistogram::new(1, 1_000_000, 3).unwrap();
        let b = HdrHistogram::new(1, 2_000_000, 3).unwrap();
        assert_eq!(a.merge(&b), Err(HistogramError::IncompatibleMerge));
    }

    #[test]
    fn clear_resets_state() {
        let mut h = HdrHistogram::for_latencies();
        h.record_n(1_000, 100);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn cdf_is_monotonic_and_ends_at_one() {
        let mut h = HdrHistogram::new(1, 10_000_000, 3).unwrap();
        for i in 1..=1000u64 {
            h.record(i * i);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev_v = 0u64;
        let mut prev_p = 0.0f64;
        for &(v, p) in &cdf {
            assert!(v >= prev_v);
            assert!(p >= prev_p);
            prev_v = v;
            prev_p = p;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn space_is_logarithmic_in_range() {
        // Covering 1 us .. 1000 s (9 decades) at 2 significant digits should take on the
        // order of a few thousand slots, not millions (paper: ~900 buckets at 100/decade).
        let h = HdrHistogram::new(1_000, 1_000_000_000_000, 2).unwrap();
        assert!(h.bucket_slots() < 8_192, "slots = {}", h.bucket_slots());
    }

    #[test]
    fn integer_log2_helpers_match_float_forms() {
        // The constructor used to derive magnitudes via f64 log2 round-trips; the
        // integer forms must agree everywhere the configuration space can reach.
        for d in 1..=5u32 {
            let v = 2 * 10u64.pow(d);
            assert_eq!(ceil_log2(v), (v as f64).log2().ceil() as u32, "v={v}");
        }
        for v in (1..4096u64).chain([1_000_000, 1 << 40, u64::MAX / 2, u64::MAX]) {
            assert_eq!(floor_log2(v), 63 - v.leading_zeros(), "v={v}");
            if v > 1 {
                assert_eq!(ceil_log2(v), floor_log2(v - 1) + 1, "v={v}");
            }
        }
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(floor_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(floor_log2(1023), 9);
    }

    #[test]
    fn zero_value_is_recordable() {
        let mut h = HdrHistogram::new(1, 1_000_000, 3).unwrap();
        h.record(0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #[test]
        fn recorded_quantiles_within_precision(
            values in prop::collection::vec(1u64..1_000_000_000, 1..500),
            q in 0.01f64..0.999
        ) {
            let mut h = HdrHistogram::new(1, 2_000_000_000, 3).unwrap();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let exact = exact_quantile(&sorted, q);
            let approx = h.value_at_quantile(q);
            // The histogram may return the highest equivalent value of the bucket that
            // contains a sample ranked at-or-after the target rank; allow one bucket of
            // slack on top of the configured precision.
            let tol = (exact as f64) * 0.005 + 2.0;
            prop_assert!(
                (approx as f64 - exact as f64).abs() <= tol || approx <= exact,
                "exact={exact} approx={approx}"
            );
        }

        /// The HDR contract, checked at *every* percentile from p1 to p99.9: the value
        /// the histogram returns for quantile q is equivalent (within the configured
        /// relative error) to some recorded sample at rank >= the exact rank — i.e. the
        /// reported tail is never optimistic by more than the precision bound.
        #[test]
        fn every_queried_percentile_is_within_the_relative_error_bound(
            values in prop::collection::vec(1u64..1_000_000_000, 1..400),
        ) {
            let mut h = HdrHistogram::new(1, 2_000_000_000, 3).unwrap();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let bound = h.max_relative_error();
            for p in (1..=999).map(|i| i as f64 / 1000.0) {
                let exact = exact_quantile(&sorted, p);
                let approx = h.value_at_quantile(p);
                // The bucket containing the exact sample reports its highest equivalent
                // value; one unit of slack absorbs integer bucket boundaries.
                let tol = exact as f64 * bound + 1.0;
                prop_assert!(
                    approx as f64 <= exact as f64 + tol,
                    "p={p}: approx {approx} overshoots exact {exact} beyond {tol}"
                );
                prop_assert!(
                    approx as f64 >= sorted[0] as f64 * (1.0 - bound) - 1.0,
                    "p={p}: approx {approx} below the smallest sample {}",
                    sorted[0]
                );
                // The returned value must be equivalent to an actually recorded sample.
                prop_assert!(
                    sorted.iter().any(|&s| {
                        let t = s as f64 * bound + 1.0;
                        (approx as f64 - s as f64).abs() <= t
                    }),
                    "p={p}: approx {approx} is not near any recorded sample"
                );
            }
        }

        #[test]
        fn total_count_matches(values in prop::collection::vec(1u64..10_000_000, 0..300)) {
            let mut h = HdrHistogram::new(1, 20_000_000, 3).unwrap();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.len(), values.len() as u64);
            let bucket_total: u64 = h.iter_recorded().map(|(_, c)| c).sum();
            prop_assert_eq!(bucket_total, values.len() as u64);
        }

        #[test]
        fn min_max_mean_are_exact(values in prop::collection::vec(1u64..100_000_000, 1..200)) {
            let mut h = HdrHistogram::new(1, 200_000_000, 3).unwrap();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.min(), *values.iter().min().unwrap());
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
            let exact_mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
            prop_assert!((h.mean() - exact_mean).abs() / exact_mean < 1e-9);
        }

        #[test]
        fn merge_equals_recording_concatenation(
            a in prop::collection::vec(1u64..1_000_000, 0..100),
            b in prop::collection::vec(1u64..1_000_000, 0..100),
        ) {
            let mut ha = HdrHistogram::new(1, 2_000_000, 3).unwrap();
            let mut hb = HdrHistogram::new(1, 2_000_000, 3).unwrap();
            let mut hall = HdrHistogram::new(1, 2_000_000, 3).unwrap();
            for &v in &a { ha.record(v); hall.record(v); }
            for &v in &b { hb.record(v); hall.record(v); }
            ha.merge(&hb).unwrap();
            prop_assert_eq!(ha.len(), hall.len());
            for q in [0.1, 0.5, 0.95, 0.99] {
                prop_assert_eq!(ha.value_at_quantile(q), hall.value_at_quantile(q));
            }
        }
    }
}
