//! High-dynamic-range latency recording for the TailBench-RS harness.
//!
//! The TailBench paper (§IV-C) records per-request latencies either exactly (for short
//! runs) or in a *high dynamic range* (HDR) histogram that covers values from microseconds
//! to thousands of seconds with logarithmic space and a bounded relative error.  This
//! crate provides both representations plus the statistical machinery used by the
//! harness:
//!
//! * [`HdrHistogram`] — an integer-valued HDR histogram with configurable significant
//!   digits, equivalent to the structure described in the paper ("the recorded value is
//!   within 1% of the actual").
//! * [`LatencySummary`] — an adaptive recorder that stores exact samples for short runs
//!   and transparently degrades to an [`HdrHistogram`] once a sample cap is exceeded.
//! * [`ci`] — confidence-interval helpers used to decide when enough repeated runs have
//!   been performed (the paper targets 95% confidence intervals within 1% of the mean).
//!
//! # Example
//!
//! ```
//! use tailbench_histogram::HdrHistogram;
//!
//! let mut h = HdrHistogram::new(1, 60_000_000_000, 3).unwrap();
//! for v in [250_000u64, 500_000, 900_000, 12_000_000] {
//!     h.record(v);
//! }
//! assert_eq!(h.len(), 4);
//! let p95 = h.value_at_quantile(0.95);
//! assert!(p95 >= 11_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod hdr;
pub mod summary;

pub use ci::{ConfidenceInterval, RunSeries};
pub use hdr::{HdrHistogram, HistogramError};
pub use summary::LatencySummary;

/// Standard quantiles reported throughout the suite (mean is reported separately).
pub const REPORT_QUANTILES: [f64; 5] = [0.50, 0.90, 0.95, 0.99, 0.999];
