//! Adaptive latency summaries.
//!
//! The paper keeps every individual latency sample for short runs (maximum accuracy) and
//! switches to HDR histograms for long runs (bounded memory).  [`LatencySummary`]
//! implements exactly that policy behind a single interface.

use crate::hdr::HdrHistogram;
use serde::{Deserialize, Serialize};

/// Default number of exact samples kept before degrading to an HDR histogram.
pub const DEFAULT_EXACT_CAP: usize = 262_144;

/// An adaptive recorder of latency samples (in nanoseconds).
///
/// Up to a configurable cap the summary stores every sample exactly; past the cap it
/// converts itself into an [`HdrHistogram`] and keeps recording there.  All query methods
/// work in either mode.
///
/// # Example
///
/// ```
/// use tailbench_histogram::LatencySummary;
///
/// let mut s = LatencySummary::with_capacity(4);
/// for v in [10u64, 20, 30, 40, 50, 60] {
///     s.record(v);
/// }
/// assert_eq!(s.len(), 6);
/// assert!(s.is_degraded());
/// assert!(s.value_at_quantile(0.5) >= 30);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    exact_cap: usize,
    samples: Vec<u64>,
    histogram: Option<HdrHistogram>,
}

impl Default for LatencySummary {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySummary {
    /// Creates a summary with the default exact-sample capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EXACT_CAP)
    }

    /// Creates a summary that keeps at most `exact_cap` exact samples before switching
    /// to histogram mode.
    #[must_use]
    pub fn with_capacity(exact_cap: usize) -> Self {
        LatencySummary {
            exact_cap: exact_cap.max(1),
            samples: Vec::new(),
            histogram: None,
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> u64 {
        match &self.histogram {
            Some(h) => h.len(),
            None => self.samples.len() as u64,
        }
    }

    /// Returns `true` if nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` once the summary has degraded to histogram mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.histogram.is_some()
    }

    /// Records a latency sample (nanoseconds).
    pub fn record(&mut self, value: u64) {
        if let Some(h) = &mut self.histogram {
            h.record(value);
            return;
        }
        self.samples.push(value);
        if self.samples.len() > self.exact_cap {
            self.degrade();
        }
    }

    fn degrade(&mut self) {
        let mut h = HdrHistogram::for_latencies();
        for &v in &self.samples {
            h.record(v);
        }
        self.samples = Vec::new();
        self.histogram = Some(h);
    }

    /// Arithmetic mean of the recorded samples, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match &self.histogram {
            Some(h) => h.mean(),
            None => {
                if self.samples.is_empty() {
                    0.0
                } else {
                    self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
                }
            }
        }
    }

    /// Smallest recorded sample, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        match &self.histogram {
            Some(h) => h.min(),
            None => self.samples.iter().copied().min().unwrap_or(0),
        }
    }

    /// Largest recorded sample, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        match &self.histogram {
            Some(h) => h.max(),
            None => self.samples.iter().copied().max().unwrap_or(0),
        }
    }

    /// The value at quantile `q` in `0.0..=1.0`; exact in sample mode, within the HDR
    /// precision bound in degraded mode. Returns 0 if empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        match &self.histogram {
            Some(h) => h.value_at_quantile(q),
            None => {
                if self.samples.is_empty() {
                    return 0;
                }
                let mut sorted = self.samples.clone();
                sorted.sort_unstable();
                let q = q.clamp(0.0, 1.0);
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            }
        }
    }

    /// Merges another summary into this one. The result is degraded if either side was
    /// degraded or the combined sample count exceeds the capacity.
    pub fn merge(&mut self, other: &LatencySummary) {
        match &other.histogram {
            Some(oh) => {
                if self.histogram.is_none() {
                    self.degrade();
                }
                self.histogram
                    .as_mut()
                    .expect("degraded above")
                    .merge(oh)
                    .expect("for_latencies histograms are always compatible");
            }
            None => {
                for &v in &other.samples {
                    self.record(v);
                }
            }
        }
    }

    /// Converts the summary into an [`HdrHistogram`] (degrading it first if necessary).
    #[must_use]
    pub fn into_histogram(mut self) -> HdrHistogram {
        if self.histogram.is_none() {
            self.degrade();
        }
        self.histogram.expect("degraded above")
    }

    /// Returns the cumulative distribution as `(value, cumulative_fraction)` pairs.
    #[must_use]
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        match &self.histogram {
            Some(h) => h.cdf(),
            None => {
                if self.samples.is_empty() {
                    return Vec::new();
                }
                let mut sorted = self.samples.clone();
                sorted.sort_unstable();
                let n = sorted.len() as f64;
                sorted
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, (i + 1) as f64 / n))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_quantiles_are_exact() {
        let mut s = LatencySummary::with_capacity(1000);
        for v in 1..=100u64 {
            s.record(v * 10);
        }
        assert!(!s.is_degraded());
        assert_eq!(s.value_at_quantile(0.5), 500);
        assert_eq!(s.value_at_quantile(0.95), 950);
        assert_eq!(s.value_at_quantile(1.0), 1000);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 1000);
        assert!((s.mean() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn degrades_past_capacity_and_stays_accurate() {
        let mut s = LatencySummary::with_capacity(10);
        for v in 1..=1000u64 {
            s.record(v * 1000);
        }
        assert!(s.is_degraded());
        assert_eq!(s.len(), 1000);
        let p95 = s.value_at_quantile(0.95) as f64;
        assert!((p95 - 950_000.0).abs() / 950_000.0 < 0.01, "p95={p95}");
    }

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = LatencySummary::new();
        assert!(s.is_empty());
        assert_eq!(s.value_at_quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert!(s.cdf().is_empty());
    }

    #[test]
    fn merge_exact_into_exact() {
        let mut a = LatencySummary::with_capacity(100);
        let mut b = LatencySummary::with_capacity(100);
        for v in 1..=10u64 {
            a.record(v);
            b.record(v + 10);
        }
        a.merge(&b);
        assert_eq!(a.len(), 20);
        assert_eq!(a.max(), 20);
        assert_eq!(a.value_at_quantile(1.0), 20);
    }

    #[test]
    fn merge_degraded_into_exact_degrades() {
        let mut a = LatencySummary::with_capacity(100);
        a.record(5);
        let mut b = LatencySummary::with_capacity(2);
        for v in [100u64, 200, 300, 400] {
            b.record(v);
        }
        assert!(b.is_degraded());
        a.merge(&b);
        assert!(a.is_degraded());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn cdf_in_exact_mode_matches_sorted_samples() {
        let mut s = LatencySummary::with_capacity(100);
        for v in [30u64, 10, 20] {
            s.record(v);
        }
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, 10);
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn into_histogram_preserves_counts() {
        let mut s = LatencySummary::with_capacity(1000);
        for v in 1..=50u64 {
            s.record(v * 100);
        }
        let h = s.into_histogram();
        assert_eq!(h.len(), 50);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The worst-case relative error of a degraded summary (the `for_latencies` HDR
    /// configuration) plus one unit of integer-boundary slack.
    fn tolerance(value: u64) -> f64 {
        value as f64 * 1e-3 + 1.0
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        /// Merging shard summaries must equal recording every sample into one summary —
        /// the invariant the cross-shard cluster collector's union view relies on.
        /// Small random capacities force every mode combination (exact+exact,
        /// exact+degraded, degraded+exact, degraded+degraded).
        #[test]
        fn merge_equals_recording_into_one(
            a in prop::collection::vec(1u64..1_000_000_000, 0..200),
            b in prop::collection::vec(1u64..1_000_000_000, 0..200),
            cap_a in 1usize..300,
            cap_b in 1usize..300,
        ) {
            let mut sa = LatencySummary::with_capacity(cap_a);
            let mut sb = LatencySummary::with_capacity(cap_b);
            // The reference records everything exactly.
            let mut all = LatencySummary::with_capacity(usize::MAX / 2);
            for &v in &a { sa.record(v); all.record(v); }
            for &v in &b { sb.record(v); all.record(v); }
            sa.merge(&sb);

            prop_assert_eq!(sa.len(), all.len());
            prop_assert_eq!(sa.min(), all.min());
            prop_assert_eq!(sa.max(), all.max());
            if !a.is_empty() || !b.is_empty() {
                prop_assert!((sa.mean() - all.mean()).abs() <= tolerance(all.mean() as u64));
                for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
                    let merged = sa.value_at_quantile(q);
                    let reference = all.value_at_quantile(q);
                    prop_assert!(
                        (merged as f64 - reference as f64).abs() <= tolerance(reference),
                        "q={q}: merged {merged} vs reference {reference} (caps {cap_a}/{cap_b})"
                    );
                }
            }
        }

        /// In both exact and degraded mode, every queried percentile stays within the
        /// HDR precision bound of the true sample quantile.
        #[test]
        fn quantiles_within_precision_in_both_modes(
            values in prop::collection::vec(1u64..1_000_000_000, 1..300),
            cap in 1usize..400,
        ) {
            let mut s = LatencySummary::with_capacity(cap);
            for &v in &values {
                s.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for p in (1..=99).map(|i| i as f64 / 100.0) {
                let exact = exact_quantile(&sorted, p);
                let approx = s.value_at_quantile(p);
                if s.is_degraded() {
                    prop_assert!(
                        approx as f64 <= exact as f64 + tolerance(exact),
                        "p={p}: degraded approx {approx} vs exact {exact}"
                    );
                    prop_assert!(
                        sorted.iter().any(|&v| (approx as f64 - v as f64).abs() <= tolerance(v)),
                        "p={p}: approx {approx} near no recorded sample"
                    );
                } else {
                    // Exact mode must be exact at every percentile.
                    prop_assert_eq!(approx, exact);
                }
            }
        }
    }
}
