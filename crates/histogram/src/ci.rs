//! Confidence intervals over repeated runs.
//!
//! The TailBench methodology (§IV-C) performs repeated randomized runs and keeps adding
//! runs until the 95% confidence interval of every reported latency metric is within 1%
//! of its mean.  [`RunSeries`] implements that stopping rule; [`ConfidenceInterval`] is
//! the underlying Student-t interval.

use serde::{Deserialize, Serialize};

/// Two-sided Student-t critical values at 95% confidence for small sample sizes
/// (degrees of freedom 1..=30). Larger samples fall back to the normal value 1.96.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Returns the two-sided 95% Student-t critical value for `dof` degrees of freedom.
#[must_use]
pub fn t_critical_95(dof: usize) -> f64 {
    if dof == 0 {
        f64::INFINITY
    } else if dof <= T_95.len() {
        T_95[dof - 1]
    } else {
        1.96
    }
}

/// A summary of a set of per-run observations of one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected), 0 when `n < 2`.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval around the mean.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Computes the 95% confidence interval of the given observations.
    ///
    /// Returns an interval with infinite half-width when fewer than two observations are
    /// available (a single run never satisfies the 1% target on its own unless the caller
    /// opts out).
    #[must_use]
    pub fn from_observations(obs: &[f64]) -> Self {
        let n = obs.len();
        if n == 0 {
            return ConfidenceInterval {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                half_width: f64::INFINITY,
            };
        }
        let mean = obs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return ConfidenceInterval {
                n,
                mean,
                std_dev: 0.0,
                half_width: f64::INFINITY,
            };
        }
        let var = obs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let half_width = t_critical_95(n - 1) * std_dev / (n as f64).sqrt();
        ConfidenceInterval {
            n,
            mean,
            std_dev,
            half_width,
        }
    }

    /// The half-width of the interval relative to the mean (`inf` when the mean is 0 and
    /// the half-width is not, 0 when both are 0).
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// Returns `true` if the 95% CI is within `fraction` of the mean (the paper uses 1%,
    /// i.e. `fraction = 0.01`).
    #[must_use]
    pub fn within(&self, fraction: f64) -> bool {
        self.relative_half_width() <= fraction
    }
}

/// Accumulates one metric across repeated runs and implements the paper's stopping rule.
///
/// # Example
///
/// ```
/// use tailbench_histogram::RunSeries;
///
/// let mut series = RunSeries::new("p95_latency_ns", 0.01);
/// series.push(1000.0);
/// assert!(!series.converged(2));     // a single run never converges
/// series.push(1002.0);
/// series.push(999.0);
/// series.push(1001.0);
/// let ci = series.interval();
/// assert!(ci.mean > 999.0 && ci.mean < 1002.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSeries {
    name: String,
    target_fraction: f64,
    observations: Vec<f64>,
}

impl RunSeries {
    /// Creates a series for the metric `name` with a target relative CI half-width
    /// `target_fraction` (e.g. `0.01` for the paper's 1% rule).
    #[must_use]
    pub fn new(name: impl Into<String>, target_fraction: f64) -> Self {
        RunSeries {
            name: name.into(),
            target_fraction,
            observations: Vec::new(),
        }
    }

    /// The metric name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of recorded runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` when no run has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Records the metric value observed in one run.
    pub fn push(&mut self, value: f64) {
        self.observations.push(value);
    }

    /// The observations recorded so far.
    #[must_use]
    pub fn observations(&self) -> &[f64] {
        &self.observations
    }

    /// The current confidence interval.
    #[must_use]
    pub fn interval(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_observations(&self.observations)
    }

    /// Returns `true` once at least `min_runs` runs have been recorded and the 95% CI is
    /// within the configured fraction of the mean.
    #[must_use]
    pub fn converged(&self, min_runs: usize) -> bool {
        self.observations.len() >= min_runs.max(2) && self.interval().within(self.target_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_critical_values() {
        assert!(t_critical_95(0).is_infinite());
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_observation_do_not_converge() {
        let ci0 = ConfidenceInterval::from_observations(&[]);
        assert!(ci0.half_width.is_infinite());
        let ci1 = ConfidenceInterval::from_observations(&[5.0]);
        assert_eq!(ci1.mean, 5.0);
        assert!(ci1.half_width.is_infinite());
        assert!(!ci1.within(0.01));
    }

    #[test]
    fn identical_observations_have_zero_width() {
        let ci = ConfidenceInterval::from_observations(&[3.0, 3.0, 3.0]);
        assert_eq!(ci.mean, 3.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.within(0.0));
    }

    #[test]
    fn known_interval_matches_hand_computation() {
        // obs = [10, 12, 14]; mean = 12, std = 2, t(2) = 4.303, hw = 4.303*2/sqrt(3)
        let ci = ConfidenceInterval::from_observations(&[10.0, 12.0, 14.0]);
        assert!((ci.mean - 12.0).abs() < 1e-12);
        assert!((ci.std_dev - 2.0).abs() < 1e-12);
        let expected = 4.303 * 2.0 / 3f64.sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn relative_half_width_handles_zero_mean() {
        let ci = ConfidenceInterval {
            n: 3,
            mean: 0.0,
            std_dev: 1.0,
            half_width: 0.5,
        };
        assert!(ci.relative_half_width().is_infinite());
        let ci0 = ConfidenceInterval {
            n: 3,
            mean: 0.0,
            std_dev: 0.0,
            half_width: 0.0,
        };
        assert_eq!(ci0.relative_half_width(), 0.0);
    }

    #[test]
    fn run_series_stopping_rule() {
        let mut s = RunSeries::new("p95", 0.01);
        assert!(s.is_empty());
        s.push(1000.0);
        assert!(!s.converged(2));
        s.push(1000.5);
        s.push(999.5);
        s.push(1000.2);
        assert!(s.converged(2), "ci = {:?}", s.interval());
        assert_eq!(s.len(), 4);
        assert_eq!(s.name(), "p95");
    }

    #[test]
    fn run_series_with_noisy_data_needs_more_runs() {
        let mut s = RunSeries::new("p99", 0.01);
        s.push(100.0);
        s.push(200.0);
        s.push(150.0);
        assert!(!s.converged(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn interval_contains_mean_and_shrinks_with_scale(
            base in 100.0f64..1e6,
            noise in prop::collection::vec(-1.0f64..1.0, 4..40)
        ) {
            let obs: Vec<f64> = noise.iter().map(|&d| base * (1.0 + 0.001 * d)).collect();
            let ci = ConfidenceInterval::from_observations(&obs);
            // Mean of observations lies inside [mean - hw, mean + hw] trivially, but also
            // the relative half width must be small for 0.1% noise.
            prop_assert!(ci.relative_half_width() < 0.01);
            prop_assert!(ci.mean > base * 0.99 && ci.mean < base * 1.01);
        }

        #[test]
        fn more_observations_never_increase_t_critical(n in 2usize..200) {
            prop_assert!(t_critical_95(n) <= t_critical_95(n - 1) + 1e-12);
        }
    }
}
