//! Fixture-based rule tests: each fixture under `tests/fixtures/rules/` is a small
//! source file linted under a representative workspace path, asserting exactly which
//! rules fire (and, for the no-fire fixtures, that none do).  These complement the
//! unit tests in `rules.rs` by exercising whole files through the public API.

use tailbench_lint::{lint_source, Rule};

/// A hot-path module (panic rule applies, wallclock does not).
const HOT: &str = "crates/core/src/queue.rs";
/// A simulation module that is *not* also hot (wallclock rule in isolation).
const SIM: &str = "crates/queueing/src/lib.rs";
/// A report-emitting module (unordered-iteration rule applies).
const REPORT: &str = "crates/experiment/src/output.rs";
/// An ordinary module: only the everywhere-on RNG rule applies.
const PLAIN: &str = "crates/workloads/src/lib.rs";

fn fired(path: &str, src: &str) -> Vec<Rule> {
    lint_source(path, src).into_iter().map(|f| f.rule).collect()
}

#[test]
fn wallclock_fixture_fires_per_construct() {
    let src = include_str!("fixtures/rules/fire_wallclock.rs");
    let rules = fired(SIM, src);
    assert_eq!(
        rules,
        vec![
            Rule::NoWallclockInSim, // Instant::now
            Rule::NoWallclockInSim, // SystemTime::now
            Rule::NoWallclockInSim, // unix_time
        ]
    );
    assert_eq!(fired(PLAIN, src), vec![], "wallclock rule is sim-scoped");
}

#[test]
fn panic_fixture_fires_per_construct_with_lines() {
    let src = include_str!("fixtures/rules/fire_panic.rs");
    let findings = lint_source(HOT, src);
    let got: Vec<(usize, Rule)> = findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        got,
        vec![
            (2, Rule::NoPanicHotpath), // .unwrap()
            (3, Rule::NoPanicHotpath), // .expect(
            (5, Rule::NoPanicHotpath), // panic!
            (7, Rule::NoPanicHotpath), // values[i]
        ]
    );
    assert_eq!(fired(PLAIN, src), vec![], "panic rule is hot-path-scoped");
}

#[test]
fn rng_fixture_fires_everywhere_but_stubs() {
    let src = include_str!("fixtures/rules/fire_rng.rs");
    assert_eq!(
        fired(PLAIN, src),
        vec![Rule::NoUnseededRng, Rule::NoUnseededRng],
        "thread_rng and time-seeded seeded_rng both fire"
    );
    assert_eq!(fired("stubs/rand/src/lib.rs", src), vec![]);
}

#[test]
fn report_fixture_fires_on_unordered_containers() {
    let src = include_str!("fixtures/rules/fire_report.rs");
    let rules = fired(REPORT, src);
    assert!(!rules.is_empty());
    assert!(rules
        .iter()
        .all(|r| *r == Rule::NoUnorderedIterationInReports));
    assert_eq!(fired(PLAIN, src), vec![], "rule is report-module-scoped");
}

#[test]
fn unjustified_allow_fixture_errors_and_does_not_suppress() {
    let src = include_str!("fixtures/rules/fire_unjustified_allow.rs");
    let rules = fired(HOT, src);
    assert!(rules.contains(&Rule::UnjustifiedAllow));
    assert!(
        rules.contains(&Rule::NoPanicHotpath),
        "an unjustified allow must not suppress the underlying finding"
    );
}

#[test]
fn unknown_rule_fixture_errors() {
    let src = include_str!("fixtures/rules/fire_unknown_rule.rs");
    assert_eq!(fired(HOT, src), vec![Rule::UnknownAllowRule]);
}

#[test]
fn string_and_comment_occurrences_never_fire() {
    let src = include_str!("fixtures/rules/nofire_strings_and_comments.rs");
    assert_eq!(fired(HOT, src), vec![]);
    assert_eq!(fired(SIM, src), vec![]);
    assert_eq!(fired(REPORT, src), vec![]);
}

#[test]
fn cfg_test_fixture_is_exempt() {
    let src = include_str!("fixtures/rules/nofire_cfg_test.rs");
    assert_eq!(fired(HOT, src), vec![]);
}

#[test]
fn justified_allow_fixture_is_clean() {
    let src = include_str!("fixtures/rules/nofire_justified_allow.rs");
    assert_eq!(fired(HOT, src), vec![]);
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    let src = include_str!("fixtures/rules/nofire_clean.rs");
    for path in [HOT, SIM, REPORT, PLAIN] {
        assert_eq!(fired(path, src), vec![], "clean fixture fired under {path}");
    }
}
