//! Property tests for the lexer's two load-bearing guarantees (see `lexer` docs):
//! totality (never panics, whatever bytes arrive) and tiling (token spans cover the
//! input exactly, so re-slicing by span reconstructs the source byte-for-byte).

use proptest::prelude::*;
use tailbench_lint::lexer::lex;

/// Characters chosen to stress the tricky lexer states: string/char/raw-string
/// delimiters, comment openers, escapes, and ordinary identifier/number material.
const TRICKY: &[u8] = b"\"'/*r#b\\\n\t ._!()[]{}:;0x9azA_";

fn assert_tiles(src: &str) -> Result<(), String> {
    let tokens = lex(src);
    let mut pos = 0usize;
    for token in &tokens {
        prop_assert_eq!(token.start, pos);
        prop_assert!(token.end > token.start, "empty token at byte {}", pos);
        pos = token.end;
    }
    prop_assert_eq!(pos, src.len());
    let rebuilt: String = tokens.iter().map(|t| &src[t.start..t.end]).collect();
    prop_assert_eq!(rebuilt.as_str(), src);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII (including control characters): lex must be total and tile.
    #[test]
    fn lexer_tiles_arbitrary_ascii(bytes in prop::collection::vec(0u8..127, 0..300)) {
        let src: String = bytes.iter().map(|&b| b as char).collect();
        assert_tiles(&src)?;
    }

    /// Sequences over the tricky alphabet: unterminated literals, nested comment
    /// openers and raw-string hash runs must still tile to end of input.
    #[test]
    fn lexer_tiles_tricky_sequences(picks in prop::collection::vec(0usize..28, 0..300)) {
        let src: String = picks
            .iter()
            .map(|&i| TRICKY[i.min(TRICKY.len() - 1)] as char)
            .collect();
        assert_tiles(&src)?;
    }
}
