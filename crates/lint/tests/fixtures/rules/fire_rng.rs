pub fn draws() -> (u64, u64) {
    let mut a = thread_rng();
    let b = seeded_rng(unix_time(), 1);
    (a.gen(), b.gen())
}
