use std::collections::BTreeMap;

pub fn emit(rows: BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, value) in rows {
        out.push_str(&name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

pub fn safe_head(values: &[u64]) -> Option<u64> {
    values.first().copied()
}
