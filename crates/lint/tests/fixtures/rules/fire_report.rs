use std::collections::HashMap;

pub fn emit(rows: HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, value) in rows {
        out.push_str(&name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}
