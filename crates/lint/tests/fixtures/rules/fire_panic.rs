pub fn drain(values: &[u64], i: usize) -> u64 {
    let first = values.first().copied().unwrap();
    let second = values.get(1).copied().expect("second element");
    if first > second {
        panic!("out of order");
    }
    values[i]
}
