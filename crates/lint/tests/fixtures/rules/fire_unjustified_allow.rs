// tailbench-lint: allow(no-panic-hotpath)
pub fn head(values: &[u64]) -> u64 {
    values[0]
}
