// Calling .unwrap() here, or panic!("x"), or Instant::now(), would be a violation —
// but this is a comment, so nothing fires.
/* Block comments mentioning thread_rng() and HashMap are equally inert. */

pub fn docs() -> &'static str {
    "strings may say .unwrap(), panic!(now), thread_rng() and HashMap freely"
}

pub fn raw() -> &'static str {
    r#"raw strings too: values[i].expect("x") and SystemTime::now()"#
}
