// tailbench-lint: allow(no-panic-hotpath) -- index bounded by the caller's invariant
pub fn head(values: &[u64]) -> u64 { values[0] }

pub fn tail(values: &[u64]) -> u64 {
    values[values.len() - 1] // tailbench-lint: allow(no-panic-hotpath) -- len checked upstream
}
