// tailbench-lint: allow(no-such-rule) -- a reason that cannot save an unknown rule
pub fn noop() {}
