pub fn production(values: &[u64]) -> u64 {
    values.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asserts_may_panic() {
        let values = vec![1u64, 2];
        assert_eq!(values.first().copied().unwrap(), values[0]);
        if values.is_empty() {
            panic!("unreachable in this test");
        }
    }
}
