pub fn step_virtual_clock() -> u64 {
    let t0 = Instant::now();
    let epoch = SystemTime::now();
    let stamp = unix_time();
    drop((t0, epoch));
    stamp
}
