//! Seeded-violation fixture: every construct below must be flagged by
//! `tailbench lint` when this tree is linted as a workspace root.

pub fn wallclock_in_sim() -> u64 {
    let started = Instant::now();
    started.elapsed().as_nanos() as u64
}

pub fn unwrap_on_hot_path(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}

pub fn index_on_hot_path(values: &[u64], i: usize) -> u64 {
    values[i]
}

// tailbench-lint: allow(no-panic-hotpath)
pub fn blanket_allow_without_reason(values: &[u64]) -> u64 {
    values[0]
}
