//! Seeded-violation fixture: unordered containers in a report-emitting module.

use std::collections::HashMap;

pub fn per_class_rows(rows: HashMap<String, u64>) -> Vec<(String, u64)> {
    rows.into_iter().collect()
}
