//! Seeded-violation fixture: entropy-based RNG construction outside `stubs/`.

pub fn unseeded_draw() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}
