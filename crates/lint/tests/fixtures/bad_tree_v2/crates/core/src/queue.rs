//! Fixture: an inverted lock order across two functions, and a guard held across
//! a blocking channel receive.  Each seeded violation is pinned by the
//! workspace_fixture test and the CI static-analysis job.

fn enqueue() {
    let s = lock_recover(&shared.state);
    let p = lock_recover(&pool.free);
    touch(&s, &p);
    drop(p);
    drop(s);
}

fn drain() {
    let p = lock_recover(&pool.free);
    let s = lock_recover(&shared.state);
    touch(&s, &p);
    drop(s);
    drop(p);
}

fn wait_for_result() {
    let s = lock_recover(&shared.state);
    let v = rx.recv();
    drop(s);
    consume(v);
}
