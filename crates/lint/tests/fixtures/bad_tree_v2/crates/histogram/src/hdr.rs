//! Fixture: a truncating cast and unchecked integer bucket arithmetic in
//! histogram index math.

fn bucket_base(index: u64) -> u32 {
    index as u32
}

fn bump(count: u64) -> u64 {
    let mut total = 0u64;
    total += count;
    total
}
