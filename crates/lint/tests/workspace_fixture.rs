//! End-to-end tests over the seeded fixture workspaces: miniature trees whose
//! files violate the rules.  `lint_workspace` must name each violation by rule,
//! file, line and column — the same contract the CI job asserts through the CLI.

use std::path::Path;
use tailbench_lint::{lint_workspace, Rule};

#[test]
fn bad_tree_fixture_fires_every_rule_with_file_and_line() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_tree");
    let report = lint_workspace(&root).expect("fixture tree is readable");
    assert!(!report.is_clean());
    assert_eq!(report.files_scanned, 3);

    let got: Vec<(&str, usize, usize, Rule)> = report
        .findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.col, f.rule))
        .collect();
    let want = [
        (
            "crates/core/src/collector.rs",
            3,
            23,
            Rule::NoUnorderedIterationInReports,
        ),
        (
            "crates/core/src/collector.rs",
            5,
            29,
            Rule::NoUnorderedIterationInReports,
        ),
        ("crates/core/src/sim.rs", 5, 28, Rule::NoWallclockInSim),
        ("crates/core/src/sim.rs", 10, 29, Rule::NoPanicHotpath),
        ("crates/core/src/sim.rs", 14, 11, Rule::NoPanicHotpath),
        ("crates/core/src/sim.rs", 17, 1, Rule::UnjustifiedAllow),
        ("crates/core/src/sim.rs", 19, 11, Rule::NoPanicHotpath),
        ("crates/workloads/src/lib.rs", 4, 19, Rule::NoUnseededRng),
    ];
    assert_eq!(
        got, want,
        "findings must be exact and sorted by (path, line, col, rule)"
    );

    // The rendered forms carry the same file:line:col coordinates the CI step greps
    // for — both text and JSON columns are 1-based.
    let text = report.render_text();
    assert!(text.contains("crates/core/src/sim.rs:5:28: no-wallclock-in-sim"));
    assert!(text.contains("crates/core/src/sim.rs:10:29: no-panic-hotpath"));
    assert!(text.contains("crates/workloads/src/lib.rs:4:19: no-unseeded-rng"));
    assert!(text.contains("8 finding(s) across 3 file(s)"));
    let json = report.to_json_string();
    assert!(json.contains("\"no-unordered-iteration-in-reports\""));
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"col\": 28"));
}

#[test]
fn bad_tree_v2_fixture_fires_every_new_rule_with_exact_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_tree_v2");
    let report = lint_workspace(&root).expect("fixture tree is readable");
    assert!(!report.is_clean());
    assert_eq!(report.files_scanned, 2);

    let got: Vec<(&str, usize, usize, Rule)> = report
        .findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.col, f.rule))
        .collect();
    let want = [
        ("crates/core/src/queue.rs", 7, 13, Rule::LockOrderCycle),
        (
            "crates/core/src/queue.rs",
            23,
            16,
            Rule::GuardAcrossBlocking,
        ),
        (
            "crates/histogram/src/hdr.rs",
            5,
            11,
            Rule::NoLossyCastInStats,
        ),
        (
            "crates/histogram/src/hdr.rs",
            10,
            11,
            Rule::NoUncheckedArithInHistogram,
        ),
    ];
    assert_eq!(
        got, want,
        "each new rule fires exactly once at its seeded site"
    );

    // The lock-order cycle names BOTH acquisition sites, with coordinates.
    let cycle = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::LockOrderCycle)
        .expect("cycle finding present");
    assert!(cycle.message.contains("`shared.state`"));
    assert!(cycle.message.contains("`pool.free`"));
    assert!(cycle.message.contains("crates/core/src/queue.rs:7:13"));
    assert!(cycle.message.contains("crates/core/src/queue.rs:15:13"));

    // The guard finding names the lock and its acquisition line.
    let guard = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::GuardAcrossBlocking)
        .expect("guard finding present");
    assert!(guard.message.contains("`shared.state`"));
    assert!(guard.message.contains("line 22"));
    assert!(guard.message.contains("channel receive"));
}
