//! End-to-end test over the seeded `bad_tree` fixture: a miniature workspace whose
//! files violate every rule.  `lint_workspace` must name each violation by rule,
//! file and line — the same contract the CI job asserts through the CLI.

use std::path::Path;
use tailbench_lint::{lint_workspace, Rule};

#[test]
fn bad_tree_fixture_fires_every_rule_with_file_and_line() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_tree");
    let report = lint_workspace(&root).expect("fixture tree is readable");
    assert!(!report.is_clean());
    assert_eq!(report.files_scanned, 3);

    let got: Vec<(&str, usize, Rule)> = report
        .findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.rule))
        .collect();
    let want = [
        (
            "crates/core/src/collector.rs",
            3,
            Rule::NoUnorderedIterationInReports,
        ),
        (
            "crates/core/src/collector.rs",
            5,
            Rule::NoUnorderedIterationInReports,
        ),
        ("crates/core/src/sim.rs", 5, Rule::NoWallclockInSim),
        ("crates/core/src/sim.rs", 10, Rule::NoPanicHotpath),
        ("crates/core/src/sim.rs", 14, Rule::NoPanicHotpath),
        ("crates/core/src/sim.rs", 17, Rule::UnjustifiedAllow),
        ("crates/core/src/sim.rs", 19, Rule::NoPanicHotpath),
        ("crates/workloads/src/lib.rs", 4, Rule::NoUnseededRng),
    ];
    assert_eq!(
        got, want,
        "findings must be exact and sorted by (path, line, rule)"
    );

    // The rendered forms carry the same file:line coordinates the CI step greps for.
    let text = report.render_text();
    assert!(text.contains("crates/core/src/sim.rs:5: no-wallclock-in-sim"));
    assert!(text.contains("crates/core/src/sim.rs:10: no-panic-hotpath"));
    assert!(text.contains("crates/workloads/src/lib.rs:4: no-unseeded-rng"));
    assert!(text.contains("8 finding(s) across 3 file(s)"));
    let json = report.to_json_string();
    assert!(json.contains("\"no-unordered-iteration-in-reports\""));
    assert!(json.contains("\"clean\": false"));
}
