//! Property tests for the parser's load-bearing guarantees (see `parser` docs):
//! totality (never panics, whatever token stream arrives — including unbalanced
//! delimiters) and span soundness (item spans index real significant tokens, and
//! reconstructing the source from the spans loses nothing: lex → parse →
//! reconstruct is the identity).

use proptest::prelude::*;
use tailbench_lint::lexer::lex;
use tailbench_lint::parser::{parse, reconstruct, significant, test_mask};

/// Characters chosen to stress the tricky parser states: item keywords come from
/// the word fragments, the rest supplies delimiters (balanced and not), attribute
/// punctuation, semicolons and macro bangs.
const TRICKY: &[&str] = &[
    "fn",
    "mod",
    "impl",
    "struct",
    "enum",
    "const",
    "unsafe",
    "async",
    "pub",
    "use",
    "macro_rules",
    "test",
    "cfg",
    "not",
    "a",
    "B",
    "0",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    ";",
    ",",
    ":",
    "!",
    "#",
    "=",
    "->",
    "\"s\"",
    "'x'",
    " ",
    "\n",
    "//c\n",
    "/*b*/",
];

fn assert_parses_losslessly(src: &str) -> Result<(), String> {
    let tokens = lex(src);
    let sig = significant(&tokens);
    let items = parse(src, &sig);

    // Every span indexes real significant tokens, body inside the item.
    fn check(items: &[tailbench_lint::parser::Item], len: usize) -> Result<(), String> {
        for item in items {
            prop_assert!(item.first <= item.last, "inverted span");
            prop_assert!(item.last < len, "span beyond stream");
            if let Some((open, close)) = item.body {
                prop_assert!(item.first <= open && open <= close && close <= item.last);
            }
            check(&item.children, len)?;
        }
        Ok(())
    }
    check(&items, sig.len())?;

    // The test mask is total over the significant stream.
    prop_assert_eq!(test_mask(sig.len(), &items).len(), sig.len());

    // Span round-trip: reassembling the source from the item tree (plus the
    // trivia between spans) reproduces the input byte-for-byte.
    let rebuilt = reconstruct(src, &sig, &items);
    prop_assert_eq!(rebuilt.as_str(), src);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII (including control characters): parse must be total and
    /// the span round-trip lossless.
    #[test]
    fn parser_round_trips_arbitrary_ascii(bytes in prop::collection::vec(0u8..127, 0..300)) {
        let src: String = bytes.iter().map(|&b| b as char).collect();
        assert_parses_losslessly(&src)?;
    }

    /// Sequences over the tricky alphabet: item keywords against unbalanced
    /// delimiters, stray attributes and macro bangs must still parse totally.
    #[test]
    fn parser_round_trips_tricky_sequences(picks in prop::collection::vec(0usize..38, 0..120)) {
        let src: String = picks
            .iter()
            .map(|&i| TRICKY[i.min(TRICKY.len() - 1)])
            .collect::<Vec<_>>()
            .join(" ");
        assert_parses_losslessly(&src)?;
    }

    /// Well-formed item skeletons: nested mods with fns and test attributes must
    /// round-trip and keep the mask length in sync.
    #[test]
    fn parser_round_trips_nested_items(depth in 0usize..5, fns in 0usize..4, test_attr in any::<bool>()) {
        let mut src = String::new();
        for d in 0..depth {
            if test_attr && d == depth / 2 {
                src.push_str("#[cfg(test)] ");
            }
            src.push_str(&format!("mod m{d} {{ "));
        }
        for f in 0..fns {
            src.push_str(&format!("fn f{f}(x: u64) -> u64 {{ x + {f} }} "));
        }
        for _ in 0..depth {
            src.push_str("} ");
        }
        assert_parses_losslessly(&src)?;
    }
}
