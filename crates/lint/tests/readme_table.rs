//! Keeps the README rule table honest: every row must reproduce the rule's
//! own `name`/`scope_desc`/`summary` strings verbatim, so the docs cannot
//! drift from the code without this test failing.

use tailbench_lint::ALL_RULES;

#[test]
fn readme_rule_table_matches_rule_definitions() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md at the workspace root");

    for rule in ALL_RULES {
        let row = format!(
            "| `{}` | {} | {} |",
            rule.name(),
            rule.scope_desc(),
            rule.summary()
        );
        assert!(
            readme.contains(&row),
            "README rule table is stale for `{}` — expected the row:\n{row}\n\
             (regenerate from `Rule::{{name,scope_desc,summary}}`)",
            rule.name()
        );
    }
}
