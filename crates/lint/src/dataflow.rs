//! Intraprocedural dataflow: coarse numeric typing for the stats rules.
//!
//! The histogram rules must distinguish *integer bucket math* (`counts[idx] +=
//! n`, `(bucket_count + 1) * half`) from float estimator math (squared
//! deviations like `(x - mean) * (x - mean)`), and flag only the former.  Full
//! type inference is out of scope for
//! an in-tree linter, so this pass computes a coarse approximation — the
//! points [`Ty::Int`], [`Ty::Float`] and [`Ty::Unknown`] — from the evidence
//! a token run actually carries:
//!
//! * literal suffixes and decimal points (`0u64`, `1.5`),
//! * `let` annotations and parameter types (`let mut running: u64`, `count: u64`),
//! * struct field declarations in the same file (`counts: Vec<u64>` — indexing an
//!   integer sequence yields `Int`),
//! * cast tails (`x as u32`), int/float method names (`.pow(..)` vs `.sqrt()`),
//!   and `uN::from(..)` constructors.
//!
//! Anything without positive evidence stays `Unknown`, and the rules only fire on
//! proven-`Int` operands — the approximation can miss, never over-reach.

use crate::lexer::{Token, TokenKind};
use crate::parser::{functions, structs, Item, ItemKind};
use std::collections::BTreeMap;

/// Coarse numeric type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A proven integer value.
    Int,
    /// A proven float value.
    Float,
    /// An integer sequence (`Vec<u64>`, `[u32; N]`) — indexing yields `Int`.
    IntSeq,
    /// No evidence either way.
    Unknown,
}

/// An unchecked arithmetic site: the token index of the operator and the
/// operator as written (`+`, `*`, `+=`, `*=`).
#[derive(Debug, Clone)]
pub struct ArithSite {
    /// Significant-token index of the operator.
    pub at: usize,
    /// The operator as written.
    pub op: &'static str,
}

/// A narrowing-cast site: the token index of the `as` and the target type.
#[derive(Debug, Clone)]
pub struct CastSite {
    /// Significant-token index of the `as` keyword.
    pub at: usize,
    /// The narrow target type (`u32`, `f32`, ...).
    pub target: String,
}

/// Cast targets the stats rule treats as truncating or precision-losing.
/// (`usize`/`u64`/`u128`/`f64` are wide enough for every counter in the tree;
/// the documented assumption is a 64-bit `usize`.)
const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
const FLOAT_TYPES: [&str; 2] = ["f32", "f64"];

/// Methods that yield a float regardless of further evidence.
const FLOAT_METHODS: [&str; 12] = [
    "sqrt",
    "ceil",
    "floor",
    "round",
    "trunc",
    "ln",
    "log2",
    "log10",
    "exp",
    "powf",
    "powi",
    "to_radians",
];

/// Methods that yield an integer when available on the receiver.
const INT_METHODS: [&str; 13] = [
    "pow",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "count_zeros",
    "len",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "abs_diff",
];

/// Finds every `as <narrow>` cast in the significant tokens.
#[must_use]
pub fn narrow_casts(src: &str, sig: &[Token]) -> Vec<CastSite> {
    let tx = |i: usize| text(src, sig, i);
    let mut out = Vec::new();
    for (i, tok) in sig.iter().enumerate() {
        if tx(i) == "as" && tok.kind == TokenKind::Ident {
            let target = tx(i + 1);
            if NARROW_TARGETS.contains(&target) {
                out.push(CastSite {
                    at: i,
                    target: target.to_string(),
                });
            }
        }
    }
    out
}

/// Finds every `+`/`*`/`+=`/`*=` over proven-integer operands inside function
/// bodies.
#[must_use]
pub fn unchecked_int_arith(src: &str, sig: &[Token], items: &[Item]) -> Vec<ArithSite> {
    let fields = field_table(src, sig, items);
    let mut out = Vec::new();
    for (_, item) in functions(items) {
        let ItemKind::Fn { .. } = &item.kind else {
            continue;
        };
        let Some((open, close)) = item.body else {
            continue;
        };
        let env = fn_env(src, sig, item.first, open, close, &fields);
        scan_ops(src, sig, open + 1, close, &env, &fields, &mut out);
    }
    out.sort_by_key(|s| s.at);
    out
}

/// If the token at `mention` sits in a `let` binding, returns the token index of
/// the first place the bound name is iterated (a `for .. in name` or a
/// `name.iter()/keys()/values()/into_iter()` chain) before `limit`.  Used to
/// sharpen the unordered-iteration rule from "a `HashMap` is mentioned" to "this
/// binding's iteration order reaches the report".
#[must_use]
pub fn iteration_of_binding(
    src: &str,
    sig: &[Token],
    mention: usize,
    limit: usize,
) -> Option<usize> {
    let tx = |i: usize| text(src, sig, i);
    // Statement start: the token after the previous `;`/`{`/`}`.
    let mut s = mention;
    while s > 0 && !matches!(tx(s - 1), ";" | "{" | "}") {
        s -= 1;
    }
    if tx(s) != "let" {
        return None;
    }
    let mut n = s + 1;
    if tx(n) == "mut" {
        n += 1;
    }
    if sig.get(n).map(|t| t.kind) != Some(TokenKind::Ident) || tx(n) == "_" {
        return None;
    }
    let name = tx(n);
    for i in mention..limit.min(sig.len()) {
        if tx(i) != name {
            continue;
        }
        if tx(i + 1) == "."
            && matches!(
                tx(i + 2),
                "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "drain"
            )
        {
            return Some(i);
        }
        // `for k in name` / `for (k, v) in &name`
        let mut b = i;
        while b > 0 && matches!(tx(b - 1), "&" | "mut") {
            b -= 1;
        }
        if b > 0 && tx(b - 1) == "in" {
            return Some(i);
        }
    }
    None
}

fn text<'a>(src: &'a str, sig: &[Token], i: usize) -> &'a str {
    sig.get(i)
        .and_then(|t| src.get(t.start..t.end))
        .unwrap_or("")
}

fn classify_type_name(name: &str) -> Ty {
    if INT_TYPES.contains(&name) {
        Ty::Int
    } else if FLOAT_TYPES.contains(&name) {
        Ty::Float
    } else {
        Ty::Unknown
    }
}

/// Classifies an annotation token run (`u64`, `&mut f64`, `Vec<u64>`, `[u8; 4]`).
fn classify_type_tokens(src: &str, sig: &[Token], from: usize, to: usize) -> Ty {
    let tx = |i: usize| text(src, sig, i);
    let mut i = from;
    while i < to
        && (matches!(tx(i), "&" | "mut" | "(")
            || sig.get(i).map(|t| t.kind) == Some(TokenKind::Lifetime))
    {
        i += 1;
    }
    match tx(i) {
        "Vec" => {
            if tx(i + 1) == "<" && classify_type_name(tx(i + 2)) == Ty::Int {
                Ty::IntSeq
            } else {
                Ty::Unknown
            }
        }
        "[" => {
            if classify_type_name(tx(i + 1)) == Ty::Int {
                Ty::IntSeq
            } else {
                Ty::Unknown
            }
        }
        t => classify_type_name(t),
    }
}

/// Field name -> type, from every struct declared in the file.
fn field_table(src: &str, sig: &[Token], items: &[Item]) -> BTreeMap<String, Ty> {
    let tx = |i: usize| text(src, sig, i);
    let mut out = BTreeMap::new();
    for item in structs(items) {
        let Some((open, close)) = item.body else {
            continue;
        };
        let mut i = open + 1;
        let mut depth = 0usize;
        while i < close {
            match tx(i) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                ":" if depth == 0
                    && sig.get(i.wrapping_sub(1)).map(|t| t.kind) == Some(TokenKind::Ident)
                    && tx(i + 1) != ":"
                    && tx(i.wrapping_sub(1)) != "crate" =>
                {
                    // `name: Type, ...` — find the end of the type (depth-0 `,`).
                    let name = tx(i - 1).to_string();
                    let ty_from = i + 1;
                    let mut j = ty_from;
                    let mut d = 0usize;
                    while j < close {
                        match tx(j) {
                            "(" | "[" | "{" | "<" => d += 1,
                            ")" | "]" | "}" | ">" => d = d.saturating_sub(1),
                            "," if d == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    let ty = classify_type_tokens(src, sig, ty_from, j);
                    if ty != Ty::Unknown {
                        out.insert(name, ty);
                    }
                    i = j;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Locals (params + `let`s) with proven types, built in one forward pass.
fn fn_env(
    src: &str,
    sig: &[Token],
    sig_start: usize,
    body_open: usize,
    body_close: usize,
    fields: &BTreeMap<String, Ty>,
) -> BTreeMap<String, Ty> {
    let tx = |i: usize| text(src, sig, i);
    let mut env = BTreeMap::new();
    // Parameters: `name: Type` pairs at depth 1 of the signature parens.  Scan
    // from the `fn` keyword so attribute parens (`#[allow(..)]`) are not taken
    // for the parameter list.
    let mut i = sig_start;
    while i < body_open && tx(i) != "fn" {
        i += 1;
    }
    while i < body_open && tx(i) != "(" {
        i += 1;
    }
    if i < body_open {
        let close = match_fwd(src, sig, i, body_open);
        let mut j = i + 1;
        while j < close {
            if tx(j) == ":"
                && tx(j + 1) != ":"
                && tx(j.wrapping_sub(1)) != ":"
                && sig.get(j.wrapping_sub(1)).map(|t| t.kind) == Some(TokenKind::Ident)
            {
                let name = tx(j - 1).to_string();
                let mut k = j + 1;
                let mut d = 0usize;
                while k < close {
                    match tx(k) {
                        "(" | "[" | "{" | "<" => d += 1,
                        ")" | "]" | "}" | ">" => d = d.saturating_sub(1),
                        "," if d == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let ty = classify_type_tokens(src, sig, j + 1, k);
                if ty != Ty::Unknown {
                    env.insert(name, ty);
                }
                j = k;
                continue;
            }
            j += 1;
        }
    }
    // Lets.
    let mut i = body_open + 1;
    while i < body_close {
        if tx(i) == "let" {
            let mut n = i + 1;
            if tx(n) == "mut" {
                n += 1;
            }
            if sig.get(n).map(|t| t.kind) == Some(TokenKind::Ident) && tx(n) != "_" {
                let name = tx(n).to_string();
                let ty = if tx(n + 1) == ":" {
                    // Annotated: classify up to the `=` or `;`.
                    let mut k = n + 2;
                    let mut d = 0usize;
                    while k < body_close {
                        match tx(k) {
                            "(" | "[" | "{" | "<" => d += 1,
                            ")" | "]" | "}" | ">" => d = d.saturating_sub(1),
                            "=" | ";" if d == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    classify_type_tokens(src, sig, n + 2, k)
                } else if tx(n + 1) == "=" {
                    // Infer from the first operand chain of the initializer.  Rust
                    // numeric operators require both sides to share a type, so the
                    // first chain's type is the expression's.
                    let end = chain_end(src, sig, n + 2, body_close);
                    type_of_chain(src, sig, n + 2, end, &env, fields)
                } else {
                    Ty::Unknown
                };
                if ty != Ty::Unknown {
                    env.insert(name, ty);
                }
                i = n + 1;
                continue;
            }
        }
        i += 1;
    }
    env
}

fn match_fwd(src: &str, sig: &[Token], open: usize, end: usize) -> usize {
    let (o, c) = match text(src, sig, open) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        let t = text(src, sig, i);
        if t == o {
            depth += 1;
        } else if t == c {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

fn match_back(src: &str, sig: &[Token], close: usize, floor: usize) -> usize {
    let (o, c) = match text(src, sig, close) {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        "}" => ("{", "}"),
        _ => return close,
    };
    let mut depth = 0usize;
    let mut i = close;
    loop {
        let t = text(src, sig, i);
        if t == c {
            depth += 1;
        } else if t == o {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        if i <= floor {
            return i;
        }
        i -= 1;
    }
}

fn is_ident(sig: &[Token], i: usize) -> bool {
    sig.get(i).map(|t| t.kind) == Some(TokenKind::Ident)
}

fn is_atom(sig: &[Token], i: usize) -> bool {
    matches!(
        sig.get(i).map(|t| t.kind),
        Some(TokenKind::Ident | TokenKind::NumLit)
    )
}

/// The start of the postfix chain whose last token is `end_tok` (walks back over
/// `a.b`, `a::b`, calls and index groups).
fn chain_start(src: &str, sig: &[Token], end_tok: usize, floor: usize) -> usize {
    let tx = |i: usize| text(src, sig, i);
    let mut i = end_tok;
    loop {
        let t = tx(i);
        if matches!(t, ")" | "]") {
            let opener = match_back(src, sig, i, floor);
            i = opener;
            if i > floor && is_atom(sig, i - 1) {
                i -= 1;
            } else {
                return i;
            }
        } else if !is_atom(sig, i) {
            return i;
        }
        if i > floor + 1 && tx(i - 1) == "." && is_atom(sig, i - 2) {
            i -= 2;
        } else if i > floor + 2 && tx(i - 1) == ":" && tx(i - 2) == ":" && is_ident(sig, i - 3) {
            i -= 3;
        } else {
            return i;
        }
    }
}

/// The inclusive end of the postfix chain starting at `start` (consumes unary
/// prefixes, one primary, then `.m(..)`, `(..)`, `[..]`, `::p` and `as T` tails).
fn chain_end(src: &str, sig: &[Token], start: usize, ceil: usize) -> usize {
    let tx = |i: usize| text(src, sig, i);
    let mut i = start;
    while i < ceil && matches!(tx(i), "&" | "*" | "-" | "!" | "mut") {
        i += 1;
    }
    // Primary.
    let mut j = if matches!(tx(i), "(" | "[") {
        match_fwd(src, sig, i, ceil)
    } else {
        i
    };
    // Postfix tail.
    loop {
        let n = j + 1;
        if n >= ceil {
            return j.min(ceil.saturating_sub(1));
        }
        match tx(n) {
            "." if is_atom(sig, n + 1) => {
                j = n + 1;
                if tx(j + 1) == "(" && j + 1 < ceil {
                    j = match_fwd(src, sig, j + 1, ceil);
                }
            }
            "(" | "[" => j = match_fwd(src, sig, n, ceil),
            ":" if tx(n + 1) == ":" && is_ident(sig, n + 2) => {
                j = n + 2;
            }
            // Cast tail: the target is a primitive name.
            "as" if is_ident(sig, n + 1) => j = n + 1,
            _ => return j,
        }
    }
}

/// Types a postfix chain `sig[from..=to]`.
fn type_of_chain(
    src: &str,
    sig: &[Token],
    from: usize,
    to: usize,
    env: &BTreeMap<String, Ty>,
    fields: &BTreeMap<String, Ty>,
) -> Ty {
    let tx = |i: usize| text(src, sig, i);
    if to < from || to >= sig.len() {
        return Ty::Unknown;
    }
    let mut from = from;
    while from < to && matches!(tx(from), "&" | "*" | "-" | "!" | "mut") {
        from += 1;
    }
    // A cast tail decides the type outright (last depth-0 `as` wins).
    let mut depth = 0usize;
    let mut cast = None;
    for i in from..=to {
        match tx(i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            "as" if depth == 0 => cast = Some(i + 1),
            _ => {}
        }
    }
    if let Some(t) = cast {
        return classify_type_name(tx(t));
    }
    match tx(to) {
        ")" => {
            // A call: type by the called name.
            let opener = match_back(src, sig, to, from);
            if opener == 0 {
                return Ty::Unknown;
            }
            let name = tx(opener - 1);
            if FLOAT_METHODS.contains(&name) {
                return Ty::Float;
            }
            if INT_METHODS.contains(&name) {
                return Ty::Int;
            }
            if matches!(name, "min" | "max" | "clamp") && opener >= from + 3 {
                // Type-preserving: recurse on the receiver (before `.name`).
                return type_of_chain(src, sig, from, opener - 3, env, fields);
            }
            if name == "from" && opener >= 4 && tx(opener - 2) == ":" && tx(opener - 3) == ":" {
                return classify_type_name(tx(opener - 4));
            }
            if opener == from {
                // A parenthesized group: type its depth-0 atoms.
                return type_of_group(src, sig, from + 1, to, env, fields);
            }
            Ty::Unknown
        }
        "]" => {
            // An index: integer sequences yield Int.
            let opener = match_back(src, sig, to, from);
            if opener == 0 || opener == from {
                return Ty::Unknown;
            }
            match type_of_chain(src, sig, from, opener - 1, env, fields) {
                Ty::IntSeq => Ty::Int,
                _ => Ty::Unknown,
            }
        }
        _ if sig.get(to).map(|t| t.kind) == Some(TokenKind::NumLit) => {
            let t = tx(to);
            if t.ends_with("f32") || t.ends_with("f64") || (t.contains('.') && !t.contains("..")) {
                Ty::Float
            } else {
                Ty::Int
            }
        }
        _ if is_ident(sig, to) => {
            if from == to {
                return env.get(tx(to)).copied().unwrap_or(Ty::Unknown);
            }
            // A field chain: type the last field name.
            fields.get(tx(to)).copied().unwrap_or(Ty::Unknown)
        }
        _ => Ty::Unknown,
    }
}

/// Types a parenthesized group by its depth-0 atoms: any `Float` atom makes the
/// group float (Rust numeric operators are homogeneous); all-`Int` makes it int;
/// comparisons make it `Unknown` (a bool).
fn type_of_group(
    src: &str,
    sig: &[Token],
    from: usize,
    to: usize,
    env: &BTreeMap<String, Ty>,
    fields: &BTreeMap<String, Ty>,
) -> Ty {
    let tx = |i: usize| text(src, sig, i);
    let mut i = from;
    let mut saw_int = false;
    while i < to {
        match tx(i) {
            "<" | ">" | "=" | "!" | "|" => return Ty::Unknown,
            "+" | "-" | "*" | "/" | "%" | "&" | "^" | "," => {
                i += 1;
            }
            _ if is_atom(sig, i) || matches!(tx(i), "(" | "[") => {
                let end = chain_end(src, sig, i, to);
                match type_of_chain(src, sig, i, end, env, fields) {
                    Ty::Float => return Ty::Float,
                    Ty::Int => saw_int = true,
                    _ => return Ty::Unknown,
                }
                i = end + 1;
            }
            _ => return Ty::Unknown,
        }
    }
    if saw_int {
        Ty::Int
    } else {
        Ty::Unknown
    }
}

/// Scans one body for `+`/`*` (binary, both operands proven `Int`) and
/// `+=`/`*=` (LHS proven `Int`).
fn scan_ops(
    src: &str,
    sig: &[Token],
    from: usize,
    to: usize,
    env: &BTreeMap<String, Ty>,
    fields: &BTreeMap<String, Ty>,
    out: &mut Vec<ArithSite>,
) {
    let tx = |i: usize| text(src, sig, i);
    let mut i = from;
    while i < to {
        let t = tx(i);
        if t != "+" && t != "*" {
            i += 1;
            continue;
        }
        // `+=` / `*=`: LHS must be a proven-Int place.
        if tx(i + 1) == "=" {
            if i > from && (matches!(tx(i - 1), ")" | "]") || is_atom(sig, i - 1)) {
                let start = chain_start(src, sig, i - 1, from.saturating_sub(1));
                if type_of_chain(src, sig, start, i - 1, env, fields) == Ty::Int {
                    out.push(ArithSite {
                        at: i,
                        op: if t == "+" { "+=" } else { "*=" },
                    });
                }
            }
            i += 2;
            continue;
        }
        // Binary `+`/`*`: the previous token must end an operand (else `*` is a
        // deref / `+` is part of some other token run).
        let binary = i > from && (matches!(tx(i - 1), ")" | "]") || is_atom(sig, i - 1));
        if binary {
            let lstart = chain_start(src, sig, i - 1, from.saturating_sub(1));
            let rend = chain_end(src, sig, i + 1, to);
            let lt = type_of_chain(src, sig, lstart, i - 1, env, fields);
            let rt = type_of_chain(src, sig, i + 1, rend, env, fields);
            if lt == Ty::Int && rt == Ty::Int {
                out.push(ArithSite {
                    at: i,
                    op: if t == "+" { "+" } else { "*" },
                });
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{parse, significant};

    fn arith(src: &str) -> Vec<&'static str> {
        let sig = significant(&lex(src));
        let items = parse(src, &sig);
        unchecked_int_arith(src, &sig, &items)
            .into_iter()
            .map(|s| s.op)
            .collect()
    }

    fn casts(src: &str) -> Vec<String> {
        let sig = significant(&lex(src));
        narrow_casts(src, &sig)
            .into_iter()
            .map(|c| c.target)
            .collect()
    }

    #[test]
    fn literal_and_annotated_int_arith_fires() {
        assert_eq!(
            arith("fn f() { let mut running = 0u64; running += 1; }"),
            vec!["+="]
        );
        assert_eq!(arith("fn f(a: u64, b: u64) -> u64 { a * b }"), vec!["*"]);
        assert_eq!(
            arith("fn f() { let x: u32 = 1; let y = x + 2; }"),
            vec!["+"]
        );
    }

    #[test]
    fn float_math_does_not_fire() {
        assert!(arith("fn f(q: f64, t: f64) -> f64 { q * t }").is_empty());
        assert!(arith("fn f(x: f64) -> f64 { (x - 1.0) * (x - 1.0) }").is_empty());
        assert!(arith("fn f() { let m = 2.0; let v = m * m; }").is_empty());
    }

    #[test]
    fn unknown_operands_do_not_fire() {
        assert!(arith("fn f(xs: &[Foo]) { let n = xs.weight() + xs.bias(); }").is_empty());
        assert!(arith("fn f(s: String, t: &str) -> String { s + t }").is_empty());
    }

    #[test]
    fn field_types_resolve_through_self() {
        let src = "struct H { total: u64, counts: Vec<u64> }\nimpl H { fn rec(&mut self, c: u64, i: usize) { self.total += c; self.counts[i] += c; } }";
        assert_eq!(arith(src), vec!["+=", "+="]);
    }

    #[test]
    fn saturating_forms_are_clean() {
        assert!(
            arith("fn f(a: u64, b: u64) -> u64 { a.saturating_add(b).saturating_mul(2) }")
                .is_empty()
        );
    }

    #[test]
    fn int_method_chains_type_as_int() {
        assert_eq!(arith("fn f() { let x = 2 * 10u64.pow(3); }"), vec!["*"]);
    }

    #[test]
    fn deref_star_is_not_multiplication() {
        assert!(arith("fn f(p: &u64) { let v = *p; }").is_empty());
    }

    #[test]
    fn narrow_casts_are_found_and_wide_ones_ignored() {
        assert_eq!(
            casts("fn f(x: u64) { let a = x as u32; let b = x as u64; let c = x as usize; }"),
            vec!["u32".to_string()]
        );
        assert_eq!(
            casts("fn g(x: f64) -> f32 { x as f32 }"),
            vec!["f32".to_string()]
        );
    }

    #[test]
    fn iteration_of_binding_finds_for_loops_and_iter_chains() {
        let src = "fn f() { let m = HashMap::new(); for (k, v) in &m { use_it(k, v); } }";
        let sig = significant(&lex(src));
        let mention = (0..sig.len())
            .find(|&i| src.get(sig[i].start..sig[i].end) == Some("HashMap"))
            .unwrap();
        assert!(iteration_of_binding(src, &sig, mention, sig.len()).is_some());

        let src2 = "fn f() { let m = HashMap::new(); m.insert(1, 2); }";
        let sig2 = significant(&lex(src2));
        let mention2 = (0..sig2.len())
            .find(|&i| src2.get(sig2[i].start..sig2[i].end) == Some("HashMap"))
            .unwrap();
        assert!(iteration_of_binding(src2, &sig2, mention2, sig2.len()).is_none());
    }
}
