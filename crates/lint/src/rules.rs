//! The rule engine: file classification, `#[cfg(test)]` skipping, allow-pragmas and
//! the four invariant rules.
//!
//! Rules operate on the significant (non-trivia) token stream produced by
//! [`crate::lexer`], so occurrences inside strings and comments never fire.  Code under
//! a `#[cfg(test)]` (or `#[test]`) attribute is exempt: the invariants protect the
//! measurement hot paths and report emitters, not the assertions that test them.

use crate::lexer::{lex, Token, TokenKind};
use std::fmt;

/// The lint rules.  Each rule's kebab-case name is both the CLI/report identifier and
/// the key accepted by the allow pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now` / `SystemTime::now` / `unix_time` in DES/simulation modules:
    /// virtual-time code consulting the wall clock silently breaks bit-exactness.
    NoWallclockInSim,
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` / direct slice indexing in designated hot-path modules.
    NoPanicHotpath,
    /// Entropy-seeded RNG construction (`thread_rng`, `from_entropy`, seeding from
    /// time) anywhere outside `stubs/`: every draw must flow from the root seed.
    NoUnseededRng,
    /// `HashMap` / `HashSet` in report/golden/JSON-emitting modules: iteration order
    /// would leak nondeterminism into emitted artifacts; use `BTreeMap` or
    /// sort-before-emit adapters.
    NoUnorderedIterationInReports,
    /// An allow pragma whose justification is missing or empty.  Never suppressible.
    UnjustifiedAllow,
    /// An allow pragma naming a rule this lint does not define.  Never suppressible.
    UnknownAllowRule,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::NoWallclockInSim,
    Rule::NoPanicHotpath,
    Rule::NoUnseededRng,
    Rule::NoUnorderedIterationInReports,
    Rule::UnjustifiedAllow,
    Rule::UnknownAllowRule,
];

impl Rule {
    /// The kebab-case rule name used in reports and allow pragmas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallclockInSim => "no-wallclock-in-sim",
            Rule::NoPanicHotpath => "no-panic-hotpath",
            Rule::NoUnseededRng => "no-unseeded-rng",
            Rule::NoUnorderedIterationInReports => "no-unordered-iteration-in-reports",
            Rule::UnjustifiedAllow => "unjustified-allow",
            Rule::UnknownAllowRule => "unknown-allow-rule",
        }
    }

    /// Parses a rule name as written in an allow pragma.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|rule| rule.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which rule sets apply to one file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClasses {
    /// Simulation/DES module: the wallclock rule applies.
    pub sim: bool,
    /// Designated hot-path module: the panic rule applies.
    pub hot: bool,
    /// Report/JSON-emitting module: the unordered-iteration rule applies.
    pub report: bool,
    /// The unseeded-RNG rule applies (everywhere except the offline dependency shims
    /// under `stubs/`, which legitimately implement entropy entry points).
    pub rng: bool,
}

/// Hot-path modules: panics here tear down a measurement mid-run.
const HOT_FILES: [&str; 7] = [
    "crates/core/src/protocol.rs",
    "crates/core/src/queue.rs",
    "crates/core/src/hedge.rs",
    "crates/core/src/sim.rs",
    "crates/core/src/worker.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/net.rs",
];

/// Report/golden/JSON-emitting modules: unordered iteration here would leak host
/// hash-seed nondeterminism into emitted artifacts.
const REPORT_FILES: [&str; 5] = [
    "crates/core/src/collector.rs",
    "crates/core/src/report.rs",
    "crates/experiment/src/lib.rs",
    "crates/experiment/src/output.rs",
    "crates/experiment/src/bench.rs",
];

/// Classifies a workspace-relative path (forward slashes) into its rule sets.
#[must_use]
pub fn classify(rel_path: &str) -> FileClasses {
    let path = rel_path.replace('\\', "/");
    let path = path.trim_start_matches("./");
    FileClasses {
        sim: path == "crates/core/src/sim.rs"
            || path.starts_with("crates/simarch/src/")
            || path.starts_with("crates/queueing/src/")
            || path == "crates/scenario/src/phase.rs",
        hot: HOT_FILES.contains(&path),
        report: REPORT_FILES.contains(&path),
        rng: !path.starts_with("stubs/"),
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation, naming the offending construct.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// A parsed allow pragma: the marker followed by `allow(<rules>) -- <reason>`.
#[derive(Debug, Clone)]
struct Pragma {
    rules: Vec<Rule>,
    reason: String,
    /// The line of code the pragma covers (its own line for trailing comments, the
    /// next code line for standalone comment lines).
    covers: usize,
}

/// The marker that introduces a pragma inside a comment.
const PRAGMA_MARKER: &str = "tailbench-lint:";

/// Lints one file's source, returning its findings sorted by line.
///
/// `rel_path` both labels the findings and selects the applicable rule sets via
/// [`classify`]; callers with out-of-tree sources (fixtures) can pass any
/// representative path.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let classes = classify(rel_path);
    let tokens = lex(source);
    let line_starts = line_starts(source);
    let line_of = |offset: usize| match line_starts.binary_search(&offset) {
        // A hit means `offset` is exactly a line start (a column-0 token on line
        // `i + 1`); a miss at insertion point `i` means the offset falls inside line `i`.
        Ok(i) => i + 1,
        Err(i) => i,
    };

    // Significant (non-trivia) tokens drive the rules; a parallel skip mask marks
    // tokens under test-only items.
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_trivia()).collect();
    let skip = test_item_mask(source, &sig);

    let mut findings = Vec::new();
    let pragmas = collect_pragmas(source, &tokens, &line_starts, &mut findings, rel_path);

    scan_rules(
        rel_path,
        source,
        &sig,
        &skip,
        classes,
        &line_of,
        &mut findings,
    );

    // Apply suppression: a finding is dropped when a *justified* pragma covering its
    // line names its rule.  Pragma hygiene findings are never suppressible.
    findings.retain(|finding| {
        if matches!(
            finding.rule,
            Rule::UnjustifiedAllow | Rule::UnknownAllowRule
        ) {
            return true;
        }
        !pragmas.iter().any(|p| {
            p.covers == finding.line && !p.reason.is_empty() && p.rules.contains(&finding.rule)
        })
    });

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Byte offsets at which each line starts (line 1 starts at offset 0).
fn line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Extracts allow pragmas from comment tokens, emitting hygiene findings for empty
/// justifications and unknown rule names.
fn collect_pragmas(
    source: &str,
    tokens: &[Token],
    line_starts: &[usize],
    findings: &mut Vec<Finding>,
    rel_path: &str,
) -> Vec<Pragma> {
    let line_of = |offset: usize| match line_starts.binary_search(&offset) {
        // A hit means `offset` is exactly a line start (a column-0 token on line
        // `i + 1`); a miss at insertion point `i` means the offset falls inside line `i`.
        Ok(i) => i + 1,
        Err(i) => i,
    };
    let mut pragmas = Vec::new();
    for (index, token) in tokens.iter().enumerate() {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = &source[token.start..token.end];
        let Some(marker_at) = text.find(PRAGMA_MARKER) else {
            continue;
        };
        let line = line_of(token.start);
        let rest = text[marker_at + PRAGMA_MARKER.len()..].trim_start();
        let Some((rule_list, reason)) = parse_allow(rest) else {
            findings.push(Finding {
                rule: Rule::UnknownAllowRule,
                path: rel_path.to_string(),
                line,
                message: format!(
                    "malformed pragma: expected `{PRAGMA_MARKER} allow(<rules>) -- <reason>`"
                ),
            });
            continue;
        };
        let mut rules = Vec::new();
        for name in rule_list
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
        {
            match Rule::from_name(name) {
                Some(rule) => rules.push(rule),
                None => findings.push(Finding {
                    rule: Rule::UnknownAllowRule,
                    path: rel_path.to_string(),
                    line,
                    message: format!("allow pragma names unknown rule `{name}`"),
                }),
            }
        }
        if reason.is_empty() {
            findings.push(Finding {
                rule: Rule::UnjustifiedAllow,
                path: rel_path.to_string(),
                line,
                message: "allow pragma without a justification (`-- <reason>` required)"
                    .to_string(),
            });
        }
        let covers = pragma_covers(tokens, index, line, &line_of);
        pragmas.push(Pragma {
            rules,
            reason: reason.to_string(),
            covers,
        });
    }
    pragmas
}

/// Parses `allow(<rules>) -- <reason>`, returning the rule list and trimmed reason
/// (empty when the `--` separator or the reason itself is missing).
fn parse_allow(rest: &str) -> Option<(&str, &str)> {
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule_list = &rest[..close];
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix("--")
        .map_or("", |r| r.trim().trim_end_matches("*/").trim());
    Some((rule_list, reason))
}

/// The line a pragma covers: its own line when code precedes it on that line
/// (trailing comment), otherwise the next line holding any significant token.
fn pragma_covers(
    tokens: &[Token],
    comment_index: usize,
    comment_line: usize,
    line_of: &dyn Fn(usize) -> usize,
) -> usize {
    let has_code_before = tokens[..comment_index]
        .iter()
        .rev()
        .take_while(|t| line_of(t.start) == comment_line)
        .any(|t| !t.kind.is_trivia());
    if has_code_before {
        return comment_line;
    }
    tokens[comment_index + 1..]
        .iter()
        .find(|t| !t.kind.is_trivia())
        .map_or(comment_line, |t| line_of(t.start))
}

/// Marks significant tokens that belong to test-only items: any item annotated
/// `#[test]` or `#[cfg(test)]` (including `cfg(all(test, ...))`; `cfg(not(test))`
/// guards *production* code and is not skipped).
fn test_item_mask(source: &str, sig: &[&Token]) -> Vec<bool> {
    let mut skip = vec![false; sig.len()];
    let text = |t: &Token| &source[t.start..t.end];
    let mut i = 0usize;
    while i < sig.len() {
        if !(sig[i].kind == TokenKind::Punct && text(sig[i]) == "#") {
            i += 1;
            continue;
        }
        // Parse one attribute `#[ ... ]` (or inner `#![ ... ]`).
        let mut j = i + 1;
        if j < sig.len() && text(sig[j]) == "!" {
            j += 1;
        }
        if !(j < sig.len() && text(sig[j]) == "[") {
            i += 1;
            continue;
        }
        let attr_start = j;
        let mut depth = 0usize;
        let mut attr_end = None;
        let mut is_test = false;
        let mut saw_cfg = false;
        let mut saw_test_ident = false;
        let mut saw_not = false;
        let mut idents = 0usize;
        for (k, token) in sig.iter().enumerate().skip(attr_start) {
            match text(token) {
                "[" | "(" | "{" => depth += 1,
                "]" | ")" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        attr_end = Some(k);
                        break;
                    }
                }
                word if token.kind == TokenKind::Ident => {
                    idents += 1;
                    match word {
                        "cfg" => saw_cfg = true,
                        "test" => saw_test_ident = true,
                        "not" => saw_not = true,
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        let Some(attr_end) = attr_end else { break };
        if idents == 1 && saw_test_ident {
            is_test = true; // plain `#[test]`
        }
        if saw_cfg && saw_test_ident && !saw_not {
            is_test = true; // `#[cfg(test)]`, `#[cfg(all(test, ...))]`
        }
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip from the attribute through the annotated item: over any further
        // attributes, then to the `;` of a braceless item or the `}` closing the
        // item's first top-level brace.
        let mut k = attr_end + 1;
        // Further attributes on the same item.
        while k + 1 < sig.len() && text(sig[k]) == "#" && text(sig[k + 1]) == "[" {
            let mut d = 0usize;
            let mut m = k + 1;
            while m < sig.len() {
                match text(sig[m]) {
                    "[" | "(" | "{" => d += 1,
                    "]" | ")" | "}" => {
                        d = d.saturating_sub(1);
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = (m + 1).min(sig.len());
        }
        let mut brace_depth = 0usize;
        let mut entered = false;
        let mut item_end = sig.len().saturating_sub(1);
        for (m, token) in sig.iter().enumerate().skip(k) {
            match text(token) {
                "{" => {
                    brace_depth += 1;
                    entered = true;
                }
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        item_end = m;
                        break;
                    }
                }
                ";" if !entered => {
                    item_end = m;
                    break;
                }
                _ => {}
            }
        }
        for flag in skip.iter_mut().take(item_end + 1).skip(i) {
            *flag = true;
        }
        i = item_end + 1;
    }
    skip
}

/// Rust keywords that can legitimately precede `[` without forming an index
/// expression (array literals and array types after `return`, `in`, …).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "ref", "return", "static",
    "while",
];

/// Identifiers whose presence anywhere (outside `stubs/`) means entropy-based RNG
/// construction.
const ENTROPY_IDENTS: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "EntropyRng",
    "getrandom",
];

/// Seeding constructors whose arguments must not consult the wall clock.
const SEED_CALLS: [&str; 4] = ["seeded_rng", "seed_from_u64", "from_seed", "with_seed"];

/// Wall-clock identifiers (used by the sim rule and the seeded-from-time check).
const WALLCLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "unix_time"];

#[allow(clippy::too_many_arguments)]
fn scan_rules(
    rel_path: &str,
    source: &str,
    sig: &[&Token],
    skip: &[bool],
    classes: FileClasses,
    line_of: &dyn Fn(usize) -> usize,
    findings: &mut Vec<Finding>,
) {
    let text = |t: &Token| &source[t.start..t.end];
    let push = |findings: &mut Vec<Finding>, rule: Rule, token: &Token, message: String| {
        findings.push(Finding {
            rule,
            path: rel_path.to_string(),
            line: line_of(token.start),
            message,
        });
    };

    for i in 0..sig.len() {
        if skip[i] {
            continue;
        }
        let token = sig[i];
        let word = text(token);
        let prev = i.checked_sub(1).map(|p| text(sig[p]));
        let next = sig.get(i + 1).map(|n| text(n));

        if classes.sim && token.kind == TokenKind::Ident {
            if word == "now"
                && prev == Some(":")
                && i >= 3
                && text(sig[i - 2]) == ":"
                && matches!(text(sig[i - 3]), "Instant" | "SystemTime")
            {
                push(
                    findings,
                    Rule::NoWallclockInSim,
                    token,
                    format!(
                        "`{}::now` in a simulation module (virtual time only)",
                        text(sig[i - 3])
                    ),
                );
            }
            if word == "unix_time" {
                push(
                    findings,
                    Rule::NoWallclockInSim,
                    token,
                    "`unix_time` in a simulation module (virtual time only)".to_string(),
                );
            }
        }

        if classes.hot {
            if token.kind == TokenKind::Ident {
                match word {
                    "unwrap" if prev == Some(".") => push(
                        findings,
                        Rule::NoPanicHotpath,
                        token,
                        "`.unwrap()` on a hot path; propagate `HarnessError` instead".to_string(),
                    ),
                    "expect" if prev == Some(".") && next == Some("(") => push(
                        findings,
                        Rule::NoPanicHotpath,
                        token,
                        "`.expect(..)` on a hot path; propagate `HarnessError` instead".to_string(),
                    ),
                    "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
                        push(
                            findings,
                            Rule::NoPanicHotpath,
                            token,
                            format!("`{word}!` on a hot path; propagate `HarnessError` instead"),
                        );
                    }
                    _ => {}
                }
            }
            if token.kind == TokenKind::Punct && word == "[" && i > 0 && !skip[i - 1] {
                let prev_token = sig[i - 1];
                let prev_text = text(prev_token);
                let indexes = match prev_token.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev_text),
                    TokenKind::Punct => matches!(prev_text, ")" | "]"),
                    _ => false,
                };
                if indexes {
                    push(
                        findings,
                        Rule::NoPanicHotpath,
                        token,
                        format!(
                            "direct indexing after `{prev_text}` on a hot path; use `get`/`get_mut`"
                        ),
                    );
                }
            }
        }

        if classes.rng && token.kind == TokenKind::Ident {
            if ENTROPY_IDENTS.contains(&word) {
                push(
                    findings,
                    Rule::NoUnseededRng,
                    token,
                    format!("`{word}`: entropy-based RNG construction; derive from the root seed"),
                );
            }
            if SEED_CALLS.contains(&word) && next == Some("(") {
                // Scan the call's argument list for wall-clock inputs.
                let mut depth = 0usize;
                for inner in sig.iter().skip(i + 1) {
                    match text(inner) {
                        "(" => depth += 1,
                        ")" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        arg if inner.kind == TokenKind::Ident
                            && (WALLCLOCK_IDENTS.contains(&arg) || arg == "now") =>
                        {
                            push(
                                findings,
                                Rule::NoUnseededRng,
                                token,
                                format!("`{word}(..)` seeded from wall-clock time (`{arg}`)"),
                            );
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }

        if classes.report && token.kind == TokenKind::Ident && matches!(word, "HashMap" | "HashSet")
        {
            push(
                findings,
                Rule::NoUnorderedIterationInReports,
                token,
                format!(
                    "`{word}` in a report-emitting module; use `BTreeMap`/`BTreeSet` or a \
                     sorted adapter"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/queue.rs";
    const SIM: &str = "crates/core/src/sim.rs";
    const REPORT: &str = "crates/core/src/collector.rs";
    const PLAIN: &str = "crates/workloads/src/lib.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<Rule> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classification_table() {
        assert!(classify("crates/core/src/sim.rs").sim);
        assert!(classify("crates/core/src/sim.rs").hot);
        assert!(classify("crates/simarch/src/cache.rs").sim);
        assert!(classify("crates/scenario/src/phase.rs").sim);
        assert!(!classify("crates/scenario/src/lib.rs").sim);
        assert!(classify("crates/core/src/net.rs").hot);
        assert!(!classify("crates/core/src/runner.rs").hot);
        assert!(classify("crates/experiment/src/output.rs").report);
        assert!(!classify("stubs/rand/src/lib.rs").rng);
        assert!(classify("crates/core/src/runner.rs").rng);
    }

    #[test]
    fn unwrap_fires_only_on_hot_paths() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired(HOT, src), vec![Rule::NoPanicHotpath]);
        assert_eq!(rules_fired(PLAIN, src), vec![]);
    }

    #[test]
    fn string_and_comment_occurrences_do_not_fire() {
        let src = r#"
            // calling .unwrap() here would panic
            fn f() -> &'static str { "don't .unwrap() or panic!(now)" }
        "#;
        assert_eq!(rules_fired(HOT, src), vec![]);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!(\"x\"); }
            }
        ";
        assert_eq!(rules_fired(HOT, src), vec![]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "
            #[cfg(not(test))]
            fn f(x: Option<u8>) -> u8 { x.unwrap() }
        ";
        assert_eq!(rules_fired(HOT, src), vec![Rule::NoPanicHotpath]);
    }

    #[test]
    fn indexing_detection() {
        assert_eq!(
            rules_fired(HOT, "fn f(v: &[u8], i: usize) -> u8 { v[i] }"),
            vec![Rule::NoPanicHotpath]
        );
        // Array literals, array types and attributes are not index expressions.
        assert_eq!(
            rules_fired(
                HOT,
                "#[derive(Debug)] struct S { a: [u8; 4] } fn f() -> [u8; 2] { [0, 1] }"
            ),
            vec![]
        );
        assert_eq!(
            rules_fired(HOT, "fn f() { let v = vec![1, 2]; drop(v); }"),
            vec![]
        );
    }

    #[test]
    fn wallclock_fires_in_sim_modules_only() {
        let src = "fn f() { let t = Instant::now(); drop(t); }";
        assert_eq!(
            rules_fired(SIM, src),
            // sim.rs is also a hot-path module, but `Instant::now()` itself carries no
            // panic construct, so only the wallclock rule fires.
            vec![Rule::NoWallclockInSim]
        );
        assert_eq!(rules_fired(PLAIN, src), vec![]);
        assert_eq!(
            rules_fired(SIM, "fn g() -> u64 { unix_time() }"),
            vec![Rule::NoWallclockInSim]
        );
    }

    #[test]
    fn rng_rule_everywhere_but_stubs() {
        let src = "fn f() { let mut rng = thread_rng(); }";
        assert_eq!(rules_fired(PLAIN, src), vec![Rule::NoUnseededRng]);
        assert_eq!(rules_fired("stubs/rand/src/lib.rs", src), vec![]);
        assert_eq!(
            rules_fired(PLAIN, "fn f() { let rng = seeded_rng(unix_time(), 1); }"),
            vec![Rule::NoUnseededRng]
        );
        assert_eq!(
            rules_fired(PLAIN, "fn f() { let rng = seeded_rng(config.seed, 1); }"),
            vec![]
        );
    }

    #[test]
    fn hashmap_rule_in_report_modules_only() {
        let src =
            "use std::collections::HashMap; fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let fired = rules_fired(REPORT, src);
        assert!(fired
            .iter()
            .all(|r| *r == Rule::NoUnorderedIterationInReports));
        assert_eq!(fired.len(), 3);
        assert_eq!(rules_fired(PLAIN, src), vec![]);
    }

    #[test]
    fn justified_allow_suppresses() {
        let src = "
            // tailbench-lint: allow(no-panic-hotpath) -- bounded by loop invariant
            fn f(v: &[u8]) -> u8 { v[0] }
        ";
        assert_eq!(rules_fired(HOT, src), vec![]);
        let trailing =
            "fn f(v: &[u8]) -> u8 { v[0] } // tailbench-lint: allow(no-panic-hotpath) -- invariant";
        assert_eq!(rules_fired(HOT, trailing), vec![]);
    }

    #[test]
    fn unjustified_allow_is_an_error_and_does_not_suppress() {
        let src = "
            // tailbench-lint: allow(no-panic-hotpath)
            fn f(v: &[u8]) -> u8 { v[0] }
        ";
        let fired = rules_fired(HOT, src);
        assert!(fired.contains(&Rule::UnjustifiedAllow));
        assert!(fired.contains(&Rule::NoPanicHotpath));
        let empty_reason = "
            // tailbench-lint: allow(no-panic-hotpath) --
            fn f(v: &[u8]) -> u8 { v[0] }
        ";
        assert!(rules_fired(HOT, empty_reason).contains(&Rule::UnjustifiedAllow));
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let src = "// tailbench-lint: allow(no-such-rule) -- because\nfn f() {}\n";
        assert_eq!(rules_fired(HOT, src), vec![Rule::UnknownAllowRule]);
    }

    #[test]
    fn allow_only_covers_its_line() {
        let src = "
            // tailbench-lint: allow(no-panic-hotpath) -- only the next line
            fn f(v: &[u8]) -> u8 { v[0] }
            fn g(v: &[u8]) -> u8 { v[1] }
        ";
        let findings = lint_source(HOT, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::NoPanicHotpath);
        assert!(findings[0].message.contains("v"));
    }

    #[test]
    fn expect_and_macros_fire() {
        let fired = rules_fired(
            HOT,
            "fn f(x: Option<u8>) -> u8 { match x { Some(v) => v, None => panic!(\"gone\") } }",
        );
        assert_eq!(fired, vec![Rule::NoPanicHotpath]);
        assert_eq!(
            rules_fired(HOT, "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }"),
            vec![Rule::NoPanicHotpath]
        );
        assert_eq!(
            rules_fired(HOT, "fn f() { unreachable!() }"),
            vec![Rule::NoPanicHotpath]
        );
        // `expect` as a field or path segment is not the panicking method.
        assert_eq!(rules_fired(HOT, "fn f(e: E) -> bool { e.expect }"), vec![]);
        // `unwrap_or` family is panic-free.
        assert_eq!(
            rules_fired(HOT, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }"),
            vec![]
        );
    }
}
