//! The rule engine: file classification, `#[cfg(test)]` skipping, allow-pragmas
//! and the rule families — token rules plus the syntax-aware concurrency and
//! stats rules built on [`crate::parser`], [`crate::scope`], [`crate::dataflow`]
//! and [`crate::callgraph`].
//!
//! Rules operate on the significant (non-trivia) token stream produced by
//! [`crate::lexer`], so occurrences inside strings and comments never fire.  Code
//! under a `#[cfg(test)]` (or `#[test]`) attribute is exempt: the invariants
//! protect the measurement hot paths and report emitters, not the assertions that
//! test them.
//!
//! Per-file analysis ([`analyze_source`]) produces local findings and function
//! scopes; the workspace pass ([`finish`]) assembles the one-level call graph,
//! runs the global lock-order cycle check, applies pragma suppression and sorts.

use crate::callgraph;
use crate::dataflow;
use crate::lexer::{lex, Token, TokenKind};
use crate::parser;
use crate::scope::{self, FnScope};
use std::collections::BTreeMap;
use std::fmt;

/// The lint rules.  Each rule's kebab-case name is both the CLI/report identifier and
/// the key accepted by the allow pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now` / `SystemTime::now` / `unix_time` in DES/simulation modules:
    /// virtual-time code consulting the wall clock silently breaks bit-exactness.
    NoWallclockInSim,
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` / direct slice indexing in designated hot-path modules.
    NoPanicHotpath,
    /// Entropy-seeded RNG construction (`thread_rng`, `from_entropy`, seeding from
    /// time) anywhere outside `stubs/`: every draw must flow from the root seed.
    NoUnseededRng,
    /// `HashMap` / `HashSet` in report/golden/JSON-emitting modules: iteration order
    /// would leak nondeterminism into emitted artifacts; use `BTreeMap` or
    /// sort-before-emit adapters.
    NoUnorderedIterationInReports,
    /// A cycle in the global lock-order graph (including re-entrant acquisition):
    /// a deadlock candidate, reported with every acquisition site named.
    LockOrderCycle,
    /// A live lock guard spanning a blocking operation — channel send/recv,
    /// `JoinHandle::join`, `Condvar::wait`, `thread::sleep`, blocking socket I/O —
    /// directly or through a one-level call.
    GuardAcrossBlocking,
    /// A truncating or precision-losing `as` cast in a stats path (histogram,
    /// collector, report, bench): percentile math must keep its full width.
    NoLossyCastInStats,
    /// Unchecked `+`/`*` over proven-integer operands in the histogram crate:
    /// bucket math must use saturating/checked forms.
    NoUncheckedArithInHistogram,
    /// An allow pragma whose justification is missing or empty.  Never suppressible.
    UnjustifiedAllow,
    /// An allow pragma naming a rule this lint does not define.  Never suppressible.
    UnknownAllowRule,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 10] = [
    Rule::NoWallclockInSim,
    Rule::NoPanicHotpath,
    Rule::NoUnseededRng,
    Rule::NoUnorderedIterationInReports,
    Rule::LockOrderCycle,
    Rule::GuardAcrossBlocking,
    Rule::NoLossyCastInStats,
    Rule::NoUncheckedArithInHistogram,
    Rule::UnjustifiedAllow,
    Rule::UnknownAllowRule,
];

impl Rule {
    /// The kebab-case rule name used in reports and allow pragmas.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallclockInSim => "no-wallclock-in-sim",
            Rule::NoPanicHotpath => "no-panic-hotpath",
            Rule::NoUnseededRng => "no-unseeded-rng",
            Rule::NoUnorderedIterationInReports => "no-unordered-iteration-in-reports",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::NoLossyCastInStats => "no-lossy-cast-in-stats",
            Rule::NoUncheckedArithInHistogram => "no-unchecked-arith-in-histogram",
            Rule::UnjustifiedAllow => "unjustified-allow",
            Rule::UnknownAllowRule => "unknown-allow-rule",
        }
    }

    /// Parses a rule name as written in an allow pragma.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|rule| rule.name() == name)
    }

    /// One-line scope description (used by `--explain` and the README table).
    #[must_use]
    pub fn scope_desc(self) -> &'static str {
        match self {
            Rule::NoWallclockInSim => "DES/simulation modules",
            Rule::NoPanicHotpath => "designated hot-path modules",
            Rule::NoUnseededRng => "everywhere outside `stubs/`",
            Rule::NoUnorderedIterationInReports => "report/JSON-emitting modules",
            Rule::LockOrderCycle | Rule::GuardAcrossBlocking => "workspace-wide (outside `stubs/`)",
            Rule::NoLossyCastInStats => "histogram + collector/report/bench paths",
            Rule::NoUncheckedArithInHistogram => "`crates/histogram`",
            Rule::UnjustifiedAllow | Rule::UnknownAllowRule => "pragma hygiene, every file",
        }
    }

    /// One-line summary (used by `--explain` and the README table).
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::NoWallclockInSim => {
                "forbids `Instant::now`, `SystemTime::now`, `unix_time` in virtual-time code"
            }
            Rule::NoPanicHotpath => {
                "forbids `.unwrap()`, `.expect(`, `panic!`-family macros and direct indexing"
            }
            Rule::NoUnseededRng => {
                "forbids entropy-based RNG construction; every draw flows from the root seed"
            }
            Rule::NoUnorderedIterationInReports => {
                "forbids `HashMap`/`HashSet` where iteration order reaches emitted artifacts"
            }
            Rule::LockOrderCycle => {
                "forbids inconsistent lock acquisition order across the workspace call graph"
            }
            Rule::GuardAcrossBlocking => {
                "forbids holding a lock guard across channel, condvar, join, sleep or socket ops"
            }
            Rule::NoLossyCastInStats => {
                "forbids truncating/precision-losing `as` casts in percentile/stats paths"
            }
            Rule::NoUncheckedArithInHistogram => {
                "forbids unchecked `+`/`*` integer bucket math; requires saturating/checked forms"
            }
            Rule::UnjustifiedAllow => "an allow pragma must carry a `-- <reason>` justification",
            Rule::UnknownAllowRule => "an allow pragma must name rules this lint defines",
        }
    }

    /// The full `--explain` text: what fires, why it matters, how to fix it.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoWallclockInSim => {
                "Fires on `Instant::now()`, `SystemTime::now()` and `unix_time` inside \
                 DES/simulation modules.\n\nWhy: virtual-time code that consults the wall clock \
                 silently breaks bit-exact replay — the DES goldens and the BENCH_<n>.json gate \
                 both depend on runs being a pure function of the seed.\n\nFix: thread the \
                 virtual clock (`RunClock`/sim time) through instead of sampling the host clock."
            }
            Rule::NoPanicHotpath => {
                "Fires on `.unwrap()`, `.expect(..)`, `panic!`/`unreachable!`/`todo!`/\
                 `unimplemented!` and direct slice indexing (`v[i]`) in designated hot-path \
                 modules (queue, pool, hedge, sim, worker, net, protocol, sync, the scenario \
                 hedge path).\n\nWhy: a panic mid-measurement tears down the run and poisons \
                 locks; the harness must degrade by propagating `HarnessError`, not abort.\n\n\
                 Fix: return `HarnessError`, use `get`/`get_mut`, or recover poisoned locks via \
                 `lock_recover`."
            }
            Rule::NoUnseededRng => {
                "Fires on entropy-based RNG construction — `thread_rng`, `from_entropy`, \
                 `OsRng`, `getrandom` — and on seeding calls whose arguments consult the wall \
                 clock, everywhere outside `stubs/`.\n\nWhy: sweep rows are only comparable when \
                 every random draw flows deterministically from the root seed.\n\nFix: derive \
                 sub-streams with `seeded_rng(root_seed, stream_id)`."
            }
            Rule::NoUnorderedIterationInReports => {
                "Fires on `HashMap`/`HashSet` in report/golden/JSON-emitting modules; when the \
                 binding is iterated, the finding names the iteration site that leaks hash order \
                 into the artifact.\n\nWhy: hash iteration order varies per process, so emitted \
                 reports would stop being byte-identical across runs.\n\nFix: use \
                 `BTreeMap`/`BTreeSet`, or sort before emitting."
            }
            Rule::LockOrderCycle => {
                "Fires when the global lock-order graph contains a cycle: some execution \
                 acquires lock A then B while another acquires B then A (a self-loop means a \
                 non-reentrant `Mutex` is re-acquired while already held).  Acquisition \
                 sequences are collected per function — `lock_recover(..)` and raw \
                 `.lock()`/`.read()`/`.write()` guards — and propagated one level along the \
                 workspace call graph.  Both acquisition sites are named in the finding.\n\n\
                 Why: an order inversion between the bounded queue, the buffer pool and the \
                 hedge engine is a latent deadlock that freezes the harness mid-run — the \
                 exact interference TailBench must not add to the system under test.\n\nFix: \
                 pick one global acquisition order, or narrow one guard (explicit `drop`, block \
                 scoping) so the overlap disappears."
            }
            Rule::GuardAcrossBlocking => {
                "Fires when a live lock guard spans a blocking operation: channel send/recv, \
                 `JoinHandle::join`, `Condvar::wait`, `thread::sleep`, blocking socket I/O — \
                 directly, or by calling (one level) into a function that blocks.  A condvar \
                 wait consuming its own guard (`state = wait_recover(&cv, state)`) is the \
                 sanctioned protocol and does not fire; nor does a blocking call invoked on \
                 the guard itself (`Mutex<File>`-style serialization, where blocking through \
                 the guard is the lock's purpose).  Findings on reactor-path files are \
                 tagged `[reactor]`: one blocked event loop stalls every connection it \
                 multiplexes.\n\nWhy: a guard held across a block serializes every other thread \
                 needing that lock behind an unbounded wait — a tail-latency amplifier and, \
                 under the future epoll reactor, a whole-loop stall.\n\nFix: narrow the guard \
                 (explicit `drop(guard)`, block scoping) before the blocking call, or move the \
                 blocking work outside the critical section."
            }
            Rule::NoLossyCastInStats => {
                "Fires on `as u8/u16/u32/i8/i16/i32/f32` casts in stats paths (the histogram \
                 crate and collector/report/bench modules).  Wide targets (`u64`, `u128`, \
                 `usize`, `f64`) are allowed — the documented assumption is a 64-bit \
                 `usize`.\n\nWhy: a truncating cast in the histogram index or counter path \
                 silently corrupts every percentile above the truncation point.\n\nFix: use \
                 `TryFrom`, restructure the computation to stay in the wide type, or use \
                 integer helpers (`ilog2`-style) instead of float round-trips."
            }
            Rule::NoUncheckedArithInHistogram => {
                "Fires on `+`, `*`, `+=`, `*=` where both operands (or the assignment target) \
                 are proven integers, inside `crates/histogram`.  Float estimator math and \
                 unproven operands never fire.\n\nWhy: counter/bucket overflow wraps in release \
                 builds and corrupts tail percentiles without any error; saturating forms fail \
                 visibly at the extreme instead.\n\nFix: `saturating_add`/`saturating_mul` (or \
                 `checked_*` where an error path exists)."
            }
            Rule::UnjustifiedAllow => {
                "Fires on a `tailbench-lint: allow(..)` pragma with no `-- <reason>` \
                 justification.  Never suppressible.\n\nWhy: the pragma audit trail \
                 (`tailbench lint --pragmas`) is only useful if every waiver explains \
                 itself.\n\nFix: append `-- <reason>`, or fix the underlying finding."
            }
            Rule::UnknownAllowRule => {
                "Fires on a `tailbench-lint: allow(..)` pragma naming a rule this lint does \
                 not define (or malformed pragma syntax).  Never suppressible.\n\nWhy: a typo'd \
                 allow would otherwise silently suppress nothing while looking intentional.\n\n\
                 Fix: use a name from `tailbench lint --explain all`."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which rule sets apply to one file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClasses {
    /// Simulation/DES module: the wallclock rule applies.
    pub sim: bool,
    /// Designated hot-path module: the panic rule applies.
    pub hot: bool,
    /// Report/JSON-emitting module: the unordered-iteration rule applies.
    pub report: bool,
    /// The unseeded-RNG rule applies (everywhere except the offline dependency shims
    /// under `stubs/`, which legitimately implement entropy entry points).
    pub rng: bool,
    /// The concurrency rules (lock order, guard-across-blocking) apply — everywhere
    /// except `stubs/`, which legitimately implement the blocking primitives.
    pub sync: bool,
    /// Stats path: the lossy-cast rule applies.
    pub stats: bool,
    /// The histogram crate: the unchecked-arith rule applies.
    pub histogram: bool,
    /// Reactor path (the socket layer today, the epoll event loop tomorrow):
    /// guard-across-blocking findings are tagged, since a blocked loop stalls every
    /// connection it multiplexes.
    pub reactor: bool,
}

/// Hot-path modules: panics here tear down a measurement mid-run.
const HOT_FILES: [&str; 9] = [
    "crates/core/src/protocol.rs",
    "crates/core/src/queue.rs",
    "crates/core/src/hedge.rs",
    "crates/core/src/sim.rs",
    "crates/core/src/worker.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/net.rs",
    "crates/core/src/sync.rs",
    "crates/scenario/src/lib.rs",
];

/// Report/golden/JSON-emitting modules: unordered iteration here would leak host
/// hash-seed nondeterminism into emitted artifacts.
const REPORT_FILES: [&str; 5] = [
    "crates/core/src/collector.rs",
    "crates/core/src/report.rs",
    "crates/experiment/src/lib.rs",
    "crates/experiment/src/output.rs",
    "crates/experiment/src/bench.rs",
];

/// Classifies a workspace-relative path (forward slashes) into its rule sets.
#[must_use]
pub fn classify(rel_path: &str) -> FileClasses {
    let path = rel_path.replace('\\', "/");
    let path = path.trim_start_matches("./");
    let histogram = path.starts_with("crates/histogram/src/");
    FileClasses {
        sim: path == "crates/core/src/sim.rs"
            || path.starts_with("crates/simarch/src/")
            || path.starts_with("crates/queueing/src/")
            || path == "crates/scenario/src/phase.rs",
        hot: HOT_FILES.contains(&path),
        report: REPORT_FILES.contains(&path),
        rng: !path.starts_with("stubs/"),
        sync: !path.starts_with("stubs/"),
        stats: histogram || REPORT_FILES.contains(&path),
        histogram,
        reactor: path == "crates/core/src/net.rs" || path.contains("/reactor"),
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (byte offset within the line).
    pub col: usize,
    /// Human-readable explanation, naming the offending construct.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// A parsed allow pragma: the marker followed by `allow(<rules>) -- <reason>`.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rules the pragma names.
    pub rules: Vec<Rule>,
    /// The justification after `--` (empty means non-suppressing).
    pub reason: String,
    /// The line the pragma comment itself sits on.
    pub line: usize,
    /// The line of code the pragma covers (its own line for trailing comments, the
    /// next code line for standalone comment lines).
    pub covers: usize,
}

/// The marker that introduces a pragma inside a comment.
const PRAGMA_MARKER: &str = "tailbench-lint:";

/// The per-file analysis product: local findings (pre-suppression), the file's
/// pragmas, and the non-test function scopes feeding the workspace pass.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub path: String,
    /// Local findings, before pragma suppression.
    pub findings: Vec<Finding>,
    /// Allow pragmas found in the file.
    pub pragmas: Vec<Pragma>,
    /// Non-test function scopes (empty when the concurrency rules don't apply).
    pub fn_scopes: Vec<FnScope>,
}

/// Lints one file's source, returning its findings sorted by line.  This is the
/// single-file convenience over [`analyze_source`] + [`finish`] — the workspace
/// pass (lock-order cycles) runs over just this file.
///
/// `rel_path` both labels the findings and selects the applicable rule sets via
/// [`classify`]; callers with out-of-tree sources (fixtures) can pass any
/// representative path.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    finish(vec![analyze_source(rel_path, source)]).0
}

/// Per-file pass: token rules, syntax rules, pragma collection, scope analysis.
#[must_use]
pub fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let classes = classify(rel_path);
    let tokens = lex(source);
    let line_starts = scope::line_starts(source);
    let sig = parser::significant(&tokens);
    let items = parser::parse(source, &sig);
    let skip = parser::test_mask(sig.len(), &items);

    let mut findings = Vec::new();
    let pragmas = collect_pragmas(source, &tokens, &line_starts, &mut findings, rel_path);

    scan_rules(
        rel_path,
        source,
        &sig,
        &skip,
        classes,
        &line_starts,
        &mut findings,
    );

    // Stats rules (syntax layer).
    if classes.stats {
        for cast in dataflow::narrow_casts(source, &sig) {
            if skip.get(cast.at).copied().unwrap_or(false) {
                continue;
            }
            let (line, col) = site_at(&sig, cast.at, &line_starts);
            findings.push(Finding {
                rule: Rule::NoLossyCastInStats,
                path: rel_path.to_string(),
                line,
                col,
                message: format!(
                    "`as {t}` in a stats path may truncate or lose precision; use \
                     `{t}::try_from(..)` or keep the wide type",
                    t = cast.target
                ),
            });
        }
    }
    if classes.histogram {
        for op in dataflow::unchecked_int_arith(source, &sig, &items) {
            if skip.get(op.at).copied().unwrap_or(false) {
                continue;
            }
            let (line, col) = site_at(&sig, op.at, &line_starts);
            let fix = if op.op.contains('*') {
                "saturating_mul"
            } else {
                "saturating_add"
            };
            findings.push(Finding {
                rule: Rule::NoUncheckedArithInHistogram,
                path: rel_path.to_string(),
                line,
                col,
                message: format!(
                    "unchecked `{}` on integer bucket math; use `{fix}` (or a `checked_` form) \
                     so overflow cannot corrupt percentiles",
                    op.op
                ),
            });
        }
    }

    // Scope analysis for the concurrency rules (non-test functions only).
    let fn_scopes = if classes.sync {
        let mut fns = scope::analyze_functions(source, &sig, &items, &line_starts);
        fns.retain(|f| !skip.get(f.body.0).copied().unwrap_or(false));
        fns
    } else {
        Vec::new()
    };

    // Direct guard-across-blocking (intra-function).
    if classes.sync {
        for f in &fn_scopes {
            for b in &f.blocking {
                for &gi in &b.guards_live {
                    let g = &f.guards[gi];
                    let tag = if classes.reactor { "[reactor] " } else { "" };
                    findings.push(Finding {
                        rule: Rule::GuardAcrossBlocking,
                        path: rel_path.to_string(),
                        line: b.site.line,
                        col: b.site.col,
                        message: format!(
                            "{tag}lock guard `{}` (acquired at line {}) held across {}; \
                             drop or scope the guard before blocking",
                            g.lock, g.site.line, b.what
                        ),
                    });
                }
            }
        }
    }

    FileAnalysis {
        path: rel_path.to_string(),
        findings,
        pragmas,
        fn_scopes,
    }
}

/// Workspace pass: assembles the call graph over every file's scopes, adds the
/// global findings (lock-order cycles, guard-held calls into blocking functions),
/// applies pragma suppression and returns `(findings, pragmas)` sorted.
#[must_use]
pub fn finish(files: Vec<FileAnalysis>) -> (Vec<Finding>, Vec<(String, Pragma)>) {
    let mut findings: Vec<Finding> = files.iter().flat_map(|f| f.findings.clone()).collect();

    let scoped: Vec<(String, Vec<FnScope>)> = files
        .iter()
        .map(|f| (f.path.clone(), f.fn_scopes.clone()))
        .collect();
    let graph = callgraph::analyze(&scoped);

    for cycle in &graph.cycles {
        findings.push(cycle_finding(cycle));
    }
    for bc in &graph.blocked_calls {
        let tag = if classify(&bc.path).reactor {
            "[reactor] "
        } else {
            ""
        };
        findings.push(Finding {
            rule: Rule::GuardAcrossBlocking,
            path: bc.path.clone(),
            line: bc.site.line,
            col: bc.site.col,
            message: format!(
                "{tag}call to `{}` (which blocks on {}) while holding lock guard `{}` \
                 acquired at line {}; drop or scope the guard first",
                bc.callee, bc.what, bc.lock, bc.lock_site.line
            ),
        });
    }

    // Suppression: a finding is dropped when a *justified* pragma in its file
    // covering its line names its rule.  Pragma hygiene findings are never
    // suppressible.
    let pragmas_by_path: BTreeMap<&str, &[Pragma]> = files
        .iter()
        .map(|f| (f.path.as_str(), f.pragmas.as_slice()))
        .collect();
    findings.retain(|finding| {
        if matches!(
            finding.rule,
            Rule::UnjustifiedAllow | Rule::UnknownAllowRule
        ) {
            return true;
        }
        !pragmas_by_path
            .get(finding.path.as_str())
            .into_iter()
            .flat_map(|p| p.iter())
            .any(|p| {
                p.covers == finding.line && !p.reason.is_empty() && p.rules.contains(&finding.rule)
            })
    });

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    findings.dedup();

    let mut pragmas: Vec<(String, Pragma)> = files
        .into_iter()
        .flat_map(|f| {
            let path = f.path;
            f.pragmas.into_iter().map(move |p| (path.clone(), p))
        })
        .collect();
    pragmas.sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));

    (findings, pragmas)
}

/// Formats a lock-order cycle as one finding naming every acquisition site.
fn cycle_finding(cycle: &callgraph::Cycle) -> Finding {
    let first = &cycle.edges[0];
    if cycle.edges.len() == 1 && first.held == first.acquired {
        return Finding {
            rule: Rule::LockOrderCycle,
            path: first.acquired_path.clone(),
            line: first.acquired_site.line,
            col: first.acquired_site.col,
            message: format!(
                "lock `{}` re-acquired while already held: first acquired at {}:{}:{}, \
                 re-acquired at {}:{}:{}{} — `std::sync::Mutex` is not reentrant",
                display_lock(&first.held),
                first.held_path,
                first.held_site.line,
                first.held_site.col,
                first.acquired_path,
                first.acquired_site.line,
                first.acquired_site.col,
                via_suffix(first),
            ),
        };
    }
    let mut parts = Vec::new();
    for e in &cycle.edges {
        parts.push(format!(
            "`{}` (acquired at {}:{}:{}) is held while acquiring `{}` (at {}:{}:{}){}",
            display_lock(&e.held),
            e.held_path,
            e.held_site.line,
            e.held_site.col,
            display_lock(&e.acquired),
            e.acquired_path,
            e.acquired_site.line,
            e.acquired_site.col,
            via_suffix(e),
        ));
    }
    Finding {
        rule: Rule::LockOrderCycle,
        path: first.acquired_path.clone(),
        line: first.acquired_site.line,
        col: first.acquired_site.col,
        message: format!(
            "lock-order cycle ({} locks): {} — acquisition order must be globally consistent",
            cycle.edges.len(),
            parts.join("; "),
        ),
    }
}

fn via_suffix(e: &callgraph::Edge) -> String {
    e.via
        .as_deref()
        .map(|v| format!(" via {v}"))
        .unwrap_or_default()
}

/// Strips the crate qualifier from a lock identity for display.
fn display_lock(qualified: &str) -> &str {
    qualified.split_once(':').map_or(qualified, |(_, l)| l)
}

/// 1-based (line, col) of the significant token at `i`.
fn site_at(sig: &[Token], i: usize, line_starts: &[usize]) -> (usize, usize) {
    let offset = sig.get(i).map_or(0, |t| t.start);
    line_col(offset, line_starts)
}

/// 1-based (line, col) of a byte offset.
fn line_col(offset: usize, line_starts: &[usize]) -> (usize, usize) {
    let line = match line_starts.binary_search(&offset) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };
    (
        line + 1,
        offset - line_starts.get(line).copied().unwrap_or(0) + 1,
    )
}

/// Extracts allow pragmas from comment tokens, emitting hygiene findings for empty
/// justifications and unknown rule names.
fn collect_pragmas(
    source: &str,
    tokens: &[Token],
    line_starts: &[usize],
    findings: &mut Vec<Finding>,
    rel_path: &str,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for (index, token) in tokens.iter().enumerate() {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = &source[token.start..token.end];
        // Doc comments *document* pragmas (rule tables, usage examples); only a
        // plain comment enacts one.
        if ["//!", "///", "/*!", "/**"]
            .iter()
            .any(|doc| text.starts_with(doc))
        {
            continue;
        }
        let Some(marker_at) = text.find(PRAGMA_MARKER) else {
            continue;
        };
        let (line, col) = line_col(token.start, line_starts);
        let rest = text[marker_at + PRAGMA_MARKER.len()..].trim_start();
        let Some((rule_list, reason)) = parse_allow(rest) else {
            findings.push(Finding {
                rule: Rule::UnknownAllowRule,
                path: rel_path.to_string(),
                line,
                col,
                message: format!(
                    "malformed pragma: expected `{PRAGMA_MARKER} allow(<rules>) -- <reason>`"
                ),
            });
            continue;
        };
        let mut rules = Vec::new();
        for name in rule_list
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
        {
            match Rule::from_name(name) {
                Some(rule) => rules.push(rule),
                None => findings.push(Finding {
                    rule: Rule::UnknownAllowRule,
                    path: rel_path.to_string(),
                    line,
                    col,
                    message: format!("allow pragma names unknown rule `{name}`"),
                }),
            }
        }
        if reason.is_empty() {
            findings.push(Finding {
                rule: Rule::UnjustifiedAllow,
                path: rel_path.to_string(),
                line,
                col,
                message: "allow pragma without a justification (`-- <reason>` required)"
                    .to_string(),
            });
        }
        let covers = pragma_covers(source, tokens, index, line, line_starts);
        pragmas.push(Pragma {
            rules,
            reason: reason.to_string(),
            line,
            covers,
        });
    }
    pragmas
}

/// Parses `allow(<rules>) -- <reason>`, returning the rule list and trimmed reason
/// (empty when the `--` separator or the reason itself is missing).
fn parse_allow(rest: &str) -> Option<(&str, &str)> {
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule_list = &rest[..close];
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix("--")
        .map_or("", |r| r.trim().trim_end_matches("*/").trim());
    Some((rule_list, reason))
}

/// The line a pragma covers: its own line when code precedes it on that line
/// (trailing comment), otherwise the next line holding any significant token.
fn pragma_covers(
    source: &str,
    tokens: &[Token],
    comment_index: usize,
    comment_line: usize,
    line_starts: &[usize],
) -> usize {
    let _ = source;
    let line_of = |offset: usize| line_col(offset, line_starts).0;
    let has_code_before = tokens[..comment_index]
        .iter()
        .rev()
        .take_while(|t| line_of(t.start) == comment_line)
        .any(|t| !t.kind.is_trivia());
    if has_code_before {
        return comment_line;
    }
    tokens[comment_index + 1..]
        .iter()
        .find(|t| !t.kind.is_trivia())
        .map_or(comment_line, |t| line_of(t.start))
}

/// Rust keywords that can legitimately precede `[` without forming an index
/// expression (array literals and array types after `return`, `in`, …).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "ref", "return", "static",
    "while",
];

/// Identifiers whose presence anywhere (outside `stubs/`) means entropy-based RNG
/// construction.
const ENTROPY_IDENTS: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "EntropyRng",
    "getrandom",
];

/// Seeding constructors whose arguments must not consult the wall clock.
const SEED_CALLS: [&str; 4] = ["seeded_rng", "seed_from_u64", "from_seed", "with_seed"];

/// Wall-clock identifiers (used by the sim rule and the seeded-from-time check).
const WALLCLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "unix_time"];

#[allow(clippy::too_many_lines)]
fn scan_rules(
    rel_path: &str,
    source: &str,
    sig: &[Token],
    skip: &[bool],
    classes: FileClasses,
    line_starts: &[usize],
    findings: &mut Vec<Finding>,
) {
    let text = |t: &Token| &source[t.start..t.end];
    let push = |findings: &mut Vec<Finding>, rule: Rule, token: &Token, message: String| {
        let (line, col) = line_col(token.start, line_starts);
        findings.push(Finding {
            rule,
            path: rel_path.to_string(),
            line,
            col,
            message,
        });
    };

    for i in 0..sig.len() {
        if skip[i] {
            continue;
        }
        let token = &sig[i];
        let word = text(token);
        let prev = i.checked_sub(1).map(|p| text(&sig[p]));
        let next = sig.get(i + 1).map(text);

        if classes.sim && token.kind == TokenKind::Ident {
            if word == "now"
                && prev == Some(":")
                && i >= 3
                && text(&sig[i - 2]) == ":"
                && matches!(text(&sig[i - 3]), "Instant" | "SystemTime")
            {
                push(
                    findings,
                    Rule::NoWallclockInSim,
                    token,
                    format!(
                        "`{}::now` in a simulation module (virtual time only)",
                        text(&sig[i - 3])
                    ),
                );
            }
            if word == "unix_time" {
                push(
                    findings,
                    Rule::NoWallclockInSim,
                    token,
                    "`unix_time` in a simulation module (virtual time only)".to_string(),
                );
            }
        }

        if classes.hot {
            if token.kind == TokenKind::Ident {
                match word {
                    "unwrap" if prev == Some(".") => push(
                        findings,
                        Rule::NoPanicHotpath,
                        token,
                        "`.unwrap()` on a hot path; propagate `HarnessError` instead".to_string(),
                    ),
                    "expect" if prev == Some(".") && next == Some("(") => push(
                        findings,
                        Rule::NoPanicHotpath,
                        token,
                        "`.expect(..)` on a hot path; propagate `HarnessError` instead".to_string(),
                    ),
                    "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
                        push(
                            findings,
                            Rule::NoPanicHotpath,
                            token,
                            format!("`{word}!` on a hot path; propagate `HarnessError` instead"),
                        );
                    }
                    _ => {}
                }
            }
            if token.kind == TokenKind::Punct && word == "[" && i > 0 && !skip[i - 1] {
                let prev_token = &sig[i - 1];
                let prev_text = text(prev_token);
                let indexes = match prev_token.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev_text),
                    TokenKind::Punct => matches!(prev_text, ")" | "]"),
                    _ => false,
                };
                if indexes {
                    push(
                        findings,
                        Rule::NoPanicHotpath,
                        token,
                        format!(
                            "direct indexing after `{prev_text}` on a hot path; use `get`/`get_mut`"
                        ),
                    );
                }
            }
        }

        if classes.rng && token.kind == TokenKind::Ident {
            if ENTROPY_IDENTS.contains(&word) {
                push(
                    findings,
                    Rule::NoUnseededRng,
                    token,
                    format!("`{word}`: entropy-based RNG construction; derive from the root seed"),
                );
            }
            if SEED_CALLS.contains(&word) && next == Some("(") {
                // Scan the call's argument list for wall-clock inputs.
                let mut depth = 0usize;
                for inner in sig.iter().skip(i + 1) {
                    match text(inner) {
                        "(" => depth += 1,
                        ")" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        arg if inner.kind == TokenKind::Ident
                            && (WALLCLOCK_IDENTS.contains(&arg) || arg == "now") =>
                        {
                            push(
                                findings,
                                Rule::NoUnseededRng,
                                token,
                                format!("`{word}(..)` seeded from wall-clock time (`{arg}`)"),
                            );
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }

        if classes.report && token.kind == TokenKind::Ident && matches!(word, "HashMap" | "HashSet")
        {
            let mut message = format!(
                "`{word}` in a report-emitting module; use `BTreeMap`/`BTreeSet` or a \
                 sorted adapter"
            );
            // Syntax sharpening: when the mention is a `let` binding that is later
            // iterated, name the iteration site that leaks hash order.
            if let Some(iter_at) = dataflow::iteration_of_binding(source, sig, i, sig.len()) {
                let (l, _) = site_at(sig, iter_at, line_starts);
                message.push_str(&format!(
                    "; this binding's iteration at line {l} leaks hash order into the artifact"
                ));
            }
            push(
                findings,
                Rule::NoUnorderedIterationInReports,
                token,
                message,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/queue.rs";
    const SIM: &str = "crates/core/src/sim.rs";
    const REPORT: &str = "crates/core/src/collector.rs";
    const PLAIN: &str = "crates/workloads/src/lib.rs";
    const HIST: &str = "crates/histogram/src/hdr.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<Rule> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classification_table() {
        assert!(classify("crates/core/src/sim.rs").sim);
        assert!(classify("crates/core/src/sim.rs").hot);
        assert!(classify("crates/simarch/src/cache.rs").sim);
        assert!(classify("crates/scenario/src/phase.rs").sim);
        assert!(!classify("crates/scenario/src/lib.rs").sim);
        assert!(classify("crates/scenario/src/lib.rs").hot);
        assert!(classify("crates/core/src/sync.rs").hot);
        assert!(classify("crates/core/src/net.rs").hot);
        assert!(classify("crates/core/src/net.rs").reactor);
        assert!(!classify("crates/core/src/runner.rs").hot);
        assert!(classify("crates/experiment/src/output.rs").report);
        assert!(classify("crates/experiment/src/output.rs").stats);
        assert!(classify("crates/histogram/src/hdr.rs").histogram);
        assert!(classify("crates/histogram/src/hdr.rs").stats);
        assert!(!classify("crates/core/src/queue.rs").histogram);
        assert!(!classify("stubs/rand/src/lib.rs").rng);
        assert!(!classify("stubs/rand/src/lib.rs").sync);
        assert!(classify("crates/core/src/runner.rs").rng);
        assert!(classify("crates/core/src/runner.rs").sync);
    }

    #[test]
    fn unwrap_fires_only_on_hot_paths() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired(HOT, src), vec![Rule::NoPanicHotpath]);
        assert_eq!(rules_fired(PLAIN, src), vec![]);
    }

    #[test]
    fn string_and_comment_occurrences_do_not_fire() {
        let src = r#"
            // calling .unwrap() here would panic
            fn f() -> &'static str { "don't .unwrap() or panic!(now)" }
        "#;
        assert_eq!(rules_fired(HOT, src), vec![]);
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!(\"x\"); }
            }
        ";
        assert_eq!(rules_fired(HOT, src), vec![]);
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "
            #[cfg(not(test))]
            fn f(x: Option<u8>) -> u8 { x.unwrap() }
        ";
        assert_eq!(rules_fired(HOT, src), vec![Rule::NoPanicHotpath]);
    }

    #[test]
    fn indexing_detection() {
        assert_eq!(
            rules_fired(HOT, "fn f(v: &[u8], i: usize) -> u8 { v[i] }"),
            vec![Rule::NoPanicHotpath]
        );
        // Array literals, array types and attributes are not index expressions.
        assert_eq!(
            rules_fired(
                HOT,
                "#[derive(Debug)] struct S { a: [u8; 4] } fn f() -> [u8; 2] { [0, 1] }"
            ),
            vec![]
        );
        assert_eq!(
            rules_fired(HOT, "fn f() { let v = vec![1, 2]; drop(v); }"),
            vec![]
        );
    }

    #[test]
    fn wallclock_fires_in_sim_modules_only() {
        let src = "fn f() { let t = Instant::now(); drop(t); }";
        assert_eq!(
            rules_fired(SIM, src),
            // sim.rs is also a hot-path module, but `Instant::now()` itself carries no
            // panic construct, so only the wallclock rule fires.
            vec![Rule::NoWallclockInSim]
        );
        assert_eq!(rules_fired(PLAIN, src), vec![]);
        assert_eq!(
            rules_fired(SIM, "fn g() -> u64 { unix_time() }"),
            vec![Rule::NoWallclockInSim]
        );
    }

    #[test]
    fn rng_rule_everywhere_but_stubs() {
        let src = "fn f() { let mut rng = thread_rng(); }";
        assert_eq!(rules_fired(PLAIN, src), vec![Rule::NoUnseededRng]);
        assert_eq!(rules_fired("stubs/rand/src/lib.rs", src), vec![]);
        assert_eq!(
            rules_fired(PLAIN, "fn f() { let rng = seeded_rng(unix_time(), 1); }"),
            vec![Rule::NoUnseededRng]
        );
        assert_eq!(
            rules_fired(PLAIN, "fn f() { let rng = seeded_rng(config.seed, 1); }"),
            vec![]
        );
    }

    #[test]
    fn hashmap_rule_in_report_modules_only() {
        let src =
            "use std::collections::HashMap; fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let fired = rules_fired(REPORT, src);
        assert!(fired
            .iter()
            .all(|r| *r == Rule::NoUnorderedIterationInReports));
        assert_eq!(fired.len(), 3);
        assert_eq!(rules_fired(PLAIN, src), vec![]);
    }

    #[test]
    fn hashmap_iteration_site_is_named() {
        let src = "fn f() { let m = HashMap::new(); for (k, v) in &m { emit(k, v); } }";
        let findings = lint_source(REPORT, src);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("iteration at line 1")));
    }

    #[test]
    fn justified_allow_suppresses() {
        let src = "
            // tailbench-lint: allow(no-panic-hotpath) -- bounded by loop invariant
            fn f(v: &[u8]) -> u8 { v[0] }
        ";
        assert_eq!(rules_fired(HOT, src), vec![]);
        let trailing =
            "fn f(v: &[u8]) -> u8 { v[0] } // tailbench-lint: allow(no-panic-hotpath) -- invariant";
        assert_eq!(rules_fired(HOT, trailing), vec![]);
    }

    #[test]
    fn doc_comments_document_pragmas_without_enacting_them() {
        // A pragma quoted in a doc comment (rule table, usage example) must
        // neither suppress findings nor appear in the pragma audit trail.
        let src = "
            //! // tailbench-lint: allow(no-panic-hotpath) -- doc example only
            /// // tailbench-lint: allow(no-panic-hotpath) -- doc example only
            fn f(v: &[u8]) -> u8 { v[0] }
        ";
        let analysis = analyze_source(HOT, src);
        assert!(analysis.pragmas.is_empty(), "doc comments are not pragmas");
        assert_eq!(rules_fired(HOT, src), vec![Rule::NoPanicHotpath]);
    }

    #[test]
    fn unjustified_allow_is_an_error_and_does_not_suppress() {
        let src = "
            // tailbench-lint: allow(no-panic-hotpath)
            fn f(v: &[u8]) -> u8 { v[0] }
        ";
        let fired = rules_fired(HOT, src);
        assert!(fired.contains(&Rule::UnjustifiedAllow));
        assert!(fired.contains(&Rule::NoPanicHotpath));
        let empty_reason = "
            // tailbench-lint: allow(no-panic-hotpath) --
            fn f(v: &[u8]) -> u8 { v[0] }
        ";
        assert!(rules_fired(HOT, empty_reason).contains(&Rule::UnjustifiedAllow));
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let src = "// tailbench-lint: allow(no-such-rule) -- because\nfn f() {}\n";
        assert_eq!(rules_fired(HOT, src), vec![Rule::UnknownAllowRule]);
    }

    #[test]
    fn allow_only_covers_its_line() {
        let src = "
            // tailbench-lint: allow(no-panic-hotpath) -- only the next line
            fn f(v: &[u8]) -> u8 { v[0] }
            fn g(v: &[u8]) -> u8 { v[1] }
        ";
        let findings = lint_source(HOT, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::NoPanicHotpath);
        assert!(findings[0].message.contains("v"));
    }

    #[test]
    fn expect_and_macros_fire() {
        let fired = rules_fired(
            HOT,
            "fn f(x: Option<u8>) -> u8 { match x { Some(v) => v, None => panic!(\"gone\") } }",
        );
        assert_eq!(fired, vec![Rule::NoPanicHotpath]);
        assert_eq!(
            rules_fired(HOT, "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }"),
            vec![Rule::NoPanicHotpath]
        );
        assert_eq!(
            rules_fired(HOT, "fn f() { unreachable!() }"),
            vec![Rule::NoPanicHotpath]
        );
        // `expect` as a field or path segment is not the panicking method.
        assert_eq!(rules_fired(HOT, "fn f(e: E) -> bool { e.expect }"), vec![]);
        // `unwrap_or` family is panic-free.
        assert_eq!(
            rules_fired(HOT, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }"),
            vec![]
        );
    }

    #[test]
    fn columns_are_one_based() {
        let findings = lint_source(HOT, "fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
        // `unwrap` starts at byte 30, so 1-based column 31.
        assert_eq!(findings[0].col, 31);
        assert!(findings[0]
            .to_string()
            .starts_with("crates/core/src/queue.rs:1:31: no-panic-hotpath:"));
    }

    #[test]
    fn lossy_cast_rule_fires_in_stats_paths_only() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(rules_fired(HIST, src), vec![Rule::NoLossyCastInStats]);
        assert_eq!(rules_fired("crates/core/src/runner.rs", src), vec![]);
        // Wide casts stay clean.
        assert_eq!(
            rules_fired(HIST, "fn f(x: u32) -> u64 { x as u64 }"),
            vec![]
        );
    }

    #[test]
    fn unchecked_arith_rule_fires_in_histogram_only() {
        let src = "fn f() { let mut total = 0u64; total += 1; }";
        assert_eq!(
            rules_fired(HIST, src),
            vec![Rule::NoUncheckedArithInHistogram]
        );
        assert_eq!(rules_fired(REPORT, src), vec![]);
        assert_eq!(
            rules_fired(
                HIST,
                "fn f() { let mut t = 0u64; t = t.saturating_add(1); }"
            ),
            vec![]
        );
        // Float estimator math is exempt.
        assert_eq!(
            rules_fired(HIST, "fn f(q: f64, n: f64) -> f64 { q * n }"),
            vec![]
        );
    }

    #[test]
    fn guard_across_blocking_fires_and_wait_protocol_is_exempt() {
        let src = "fn f() { let g = lock_recover(&l); let v = rx.recv(); drop(g); emit(v); }";
        assert_eq!(rules_fired(HOT, src), vec![Rule::GuardAcrossBlocking]);
        // The condvar protocol consuming its own guard is sanctioned.
        let wait = "fn f() { let mut s = lock_recover(&l); s = wait_recover(&cv, s); finish(s); }";
        assert_eq!(rules_fired(HOT, wait), vec![]);
        // Dropping before blocking is the fix.
        let fixed = "fn f() { let g = lock_recover(&l); let t = g.take(); drop(g); let v = rx.recv(); emit(t, v); }";
        assert_eq!(rules_fired(HOT, fixed), vec![]);
    }

    #[test]
    fn reactor_paths_tag_blocking_findings() {
        let src = "fn f() { let g = lock_recover(&l); stream.read_exact(&mut buf); drop(g); }";
        let findings = lint_source("crates/core/src/net.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.starts_with("[reactor]"));
    }

    #[test]
    fn lock_order_cycle_names_both_sites() {
        let src = "
fn ab() { let a = lock_recover(&left); let b = lock_recover(&right); drop(b); drop(a); }
fn ba() { let b = lock_recover(&right); let a = lock_recover(&left); drop(a); drop(b); }
";
        let findings = lint_source(HOT, src);
        let cycles: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrderCycle)
            .collect();
        assert_eq!(cycles.len(), 1);
        let msg = &cycles[0].message;
        assert!(msg.contains("`left`") && msg.contains("`right`"));
        // Both acquisition sites are named with line:col coordinates.
        assert!(msg.contains(":2:") && msg.contains(":3:"), "{msg}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "
fn ab() { let a = lock_recover(&left); let b = lock_recover(&right); drop(b); drop(a); }
fn ab2() { let a = lock_recover(&left); let b = lock_recover(&right); drop(b); drop(a); }
";
        assert_eq!(rules_fired(HOT, src), vec![]);
    }

    #[test]
    fn test_only_functions_are_exempt_from_concurrency_rules() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn helper() { let g = lock_recover(&l); let v = rx.recv(); drop(g); }
            }
        ";
        assert_eq!(rules_fired(HOT, src), vec![]);
    }

    #[test]
    fn explain_texts_exist_for_every_rule() {
        for rule in ALL_RULES {
            assert!(!rule.summary().is_empty());
            assert!(rule.explain().contains("Why:"), "{}", rule.name());
            assert!(rule.explain().contains("Fix:"), "{}", rule.name());
            assert!(!rule.scope_desc().is_empty());
        }
    }
}
