//! Per-function symbol and scope analysis: lock-guard bindings with live ranges,
//! call sites, and blocking operations.
//!
//! This pass walks one function body (a flat significant-token run from the
//! [`crate::parser`] item tree) and recovers just enough binding structure for the
//! concurrency rules:
//!
//! * **Guards** — `let g = lock_recover(&x)`, `let g = m.lock()` (also `.read()` /
//!   `.write()` with empty argument lists), and guard-consuming condvar waits
//!   (`g = wait_recover(&cv, g)`).  A guard's live range runs from its acquisition
//!   to the first `drop(g)`, a shadowing `let g =`, the close of its enclosing
//!   block, or — for unnamed temporaries — the end of its statement.
//! * **Call sites** — free calls, `Path::assoc` calls and `.method()` calls, each
//!   with the set of guards live at the call.
//! * **Blocking operations** — channel send/recv, `JoinHandle::join`, condvar
//!   waits, sleeps and blocking socket I/O, again with the live guard set (minus
//!   any guard the operation itself consumes, so the bounded queue's
//!   `state = wait_recover(&not_full, state)` protocol is not a false positive,
//!   and minus the guard the operation is invoked *on* — `Mutex<File>`-style
//!   serialization where blocking through the guard is the lock's purpose).
//!
//! Lock identities are canonicalised receiver chains with `self`/`&`/`*` stripped:
//! `lock_recover(&self.shared.state)` and `lock_recover(&shared.state)` both name
//! the lock `shared.state`.  Identities are later crate-qualified by the call-graph
//! pass so same-named fields in different crates stay distinct.

use crate::lexer::{Token, TokenKind};
use crate::parser::{Item, ItemKind};

/// A site in the file: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset within the line, 1-based).
    pub col: usize,
}

/// One lock guard observed in a function body.
#[derive(Debug, Clone)]
pub struct Guard {
    /// The binding name (`None` for `_` patterns and temporaries).
    pub var: Option<String>,
    /// Canonical lock identity (receiver chain, `self`/`&`/`*` stripped).
    pub lock: String,
    /// Where the guard is acquired.
    pub site: Site,
    /// Significant-token index of the acquisition.
    pub from: usize,
    /// Last significant-token index at which the guard is live (inclusive).
    pub to: usize,
}

/// One call site in a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// The called name (`push` in `q.push(x)`, `parse` in `json::parse(s)`).
    pub callee: String,
    /// Path qualifier immediately before `::` (`json` in `json::parse`).
    pub qualifier: Option<String>,
    /// `true` for `.method()` calls.
    pub method: bool,
    /// `true` for direct `self.method()` calls.
    pub self_receiver: bool,
    /// Where the call happens.
    pub site: Site,
    /// Indices into `guards` of every guard live at the call.
    pub guards_live: Vec<usize>,
}

/// One potentially blocking operation in a function body.
#[derive(Debug, Clone)]
pub struct Blocking {
    /// Human description, e.g. "`.recv()` (channel receive)".
    pub what: String,
    /// Where it happens.
    pub site: Site,
    /// Indices into `guards` of guards live across the operation (a guard the
    /// operation itself consumes — condvar wait protocols — is excluded).
    pub guards_live: Vec<usize>,
}

/// Everything the concurrency rules need to know about one function.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// Function name as written.
    pub name: String,
    /// Enclosing impl type, if any.
    pub type_name: Option<String>,
    /// Significant-token indices of the body braces (for test-mask filtering).
    pub body: (usize, usize),
    /// Guards in acquisition order.
    pub guards: Vec<Guard>,
    /// For each guard (by index), the guard indices already live when it was
    /// acquired — the intra-function lock-order edges.
    pub held_at_acquire: Vec<Vec<usize>>,
    /// Call sites in source order.
    pub calls: Vec<Call>,
    /// Blocking operations in source order.
    pub blocking: Vec<Blocking>,
}

/// Method names that acquire a guard when called with no arguments.
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Keywords that look like calls but are not (`if (..)`, `while (..)` etc.).
const CALL_KEYWORDS: [&str; 14] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "in",
    "move", "as", "where",
];

/// `(ident, description)` table of blocking operations recognised by name.
/// `recv`/`send` are channel endpoints, `join` a thread join, the `wait` family
/// condvar waits, the rest sleeps and blocking socket I/O.
const BLOCKING_METHODS: [(&str, &str); 16] = [
    ("send", "channel send"),
    ("recv", "channel receive"),
    ("recv_timeout", "channel receive"),
    ("recv_deadline", "channel receive"),
    ("join", "thread join"),
    ("wait", "condvar wait"),
    ("wait_timeout", "condvar wait"),
    ("wait_while", "condvar wait"),
    ("sleep", "sleep"),
    ("sleep_until_ns", "sleep"),
    ("park", "thread park"),
    ("accept", "blocking socket accept"),
    ("connect", "blocking socket connect"),
    ("read_exact", "blocking socket read"),
    ("read_to_end", "blocking socket read"),
    ("write_all", "blocking socket write"),
];

/// Free functions that block (the in-tree condvar helper consumes its guard).
const BLOCKING_FREE_FNS: [(&str, &str); 3] = [
    ("wait_recover", "condvar wait"),
    ("sleep_until_ns", "sleep"),
    ("sleep", "sleep"),
];

/// Analyzes every function item in `items`, resolving sites through
/// `line_starts` (byte offsets of line beginnings).
#[must_use]
pub fn analyze_functions(
    src: &str,
    sig: &[Token],
    items: &[Item],
    line_starts: &[usize],
) -> Vec<FnScope> {
    crate::parser::functions(items)
        .into_iter()
        .filter_map(|(type_name, item)| {
            let ItemKind::Fn { name } = &item.kind else {
                return None;
            };
            let (open, close) = item.body?;
            Some(analyze_body(
                src,
                sig,
                name.clone(),
                type_name,
                open,
                close,
                line_starts,
            ))
        })
        .collect()
}

fn text<'a>(src: &'a str, sig: &[Token], i: usize) -> &'a str {
    sig.get(i)
        .and_then(|t| src.get(t.start..t.end))
        .unwrap_or("")
}

fn site_of(sig: &[Token], i: usize, line_starts: &[usize]) -> Site {
    let offset = sig.get(i).map_or(0, |t| t.start);
    let line = match line_starts.binary_search(&offset) {
        Ok(l) => l,
        Err(l) => l.saturating_sub(1),
    };
    Site {
        line: line + 1,
        col: offset - line_starts.get(line).copied().unwrap_or(0) + 1,
    }
}

#[allow(clippy::too_many_lines)]
fn analyze_body(
    src: &str,
    sig: &[Token],
    name: String,
    type_name: Option<String>,
    open: usize,
    close: usize,
    line_starts: &[usize],
) -> FnScope {
    let tx = |i: usize| text(src, sig, i);
    let is_ident = |i: usize| sig.get(i).is_some_and(|t| t.kind == TokenKind::Ident);
    let mut guards: Vec<Guard> = Vec::new();
    let mut held_at_acquire: Vec<Vec<usize>> = Vec::new();
    let mut calls: Vec<Call> = Vec::new();
    let mut blocking: Vec<Blocking> = Vec::new();

    let live_at = |guards: &[Guard], p: usize| -> Vec<usize> {
        guards
            .iter()
            .enumerate()
            .filter(|(_, g)| g.from < p && p <= g.to)
            .map(|(i, _)| i)
            .collect()
    };

    let mut i = open + 1;
    while i < close {
        if !is_ident(i) {
            i += 1;
            continue;
        }
        let t = tx(i);
        let prev = if i > 0 { tx(i - 1) } else { "" };
        let next = tx(i + 1);

        // --- Guard acquisitions -------------------------------------------------
        if t == "lock_recover" && next == "(" {
            let arg_close = match_forward(src, sig, i + 1, close);
            let lock = normalize_chain(src, sig, i + 2, arg_close);
            let held = live_at(&guards, i);
            // A call chained onto the guard (`lock_recover(&x).get(..)`) means the
            // binding holds the chain's result, not the guard: the guard itself is
            // a temporary dropped at the end of the statement.
            let (var, to) = if tx(arg_close + 1) == "." {
                (None, statement_end(src, sig, i, close))
            } else {
                binding_of(src, sig, i, open, close)
            };
            guards.push(Guard {
                var,
                lock,
                site: site_of(sig, i, line_starts),
                from: i,
                to,
            });
            held_at_acquire.push(held);
            i += 1;
            continue;
        }
        if GUARD_METHODS.contains(&t) && prev == "." && next == "(" && tx(i + 2) == ")" {
            let lock = receiver_chain(src, sig, i - 2, open);
            if !lock.is_empty() {
                let held = live_at(&guards, i);
                // Same chaining rule: `map.read().get(..)` binds the lookup result,
                // so the read guard is a statement-scoped temporary.
                let (var, to) = if tx(i + 3) == "." {
                    (None, statement_end(src, sig, i, close))
                } else {
                    binding_of(src, sig, i, open, close)
                };
                guards.push(Guard {
                    var,
                    lock,
                    site: site_of(sig, i, line_starts),
                    from: i,
                    to,
                });
                held_at_acquire.push(held);
            }
            i += 1;
            continue;
        }

        // --- Blocking operations ------------------------------------------------
        let blocked = if prev == "." {
            BLOCKING_METHODS.iter().find(|(n, _)| *n == t).copied()
        } else {
            BLOCKING_FREE_FNS.iter().find(|(n, _)| *n == t).copied()
        };
        if let Some((op, desc)) = blocked {
            if next == "(" {
                // `join`/`recv`/`wait` only block with the right arity: exclude
                // `Vec::join(sep)`-style string joins (args present) for `join`,
                // and a condvar wait's own guard argument.
                let arg_close = match_forward(src, sig, i + 1, close);
                let arity_ok = match op {
                    "join" | "recv" => tx(i + 2) == ")",
                    _ => true,
                };
                if arity_ok {
                    let consumed = wait_consumed_guard(src, sig, op, i + 2, arg_close);
                    // A blocking call invoked *on the guard itself* (`file.write_all(..)`
                    // where `file` is the guard over a `Mutex<File>`) is the lock's
                    // purpose — serializing that resource — and cannot drop the guard
                    // first.  Exempt that guard; any *other* guard held across it
                    // still fires.
                    let own_receiver = if prev == "." {
                        receiver_chain(src, sig, i - 2, open)
                            .split('.')
                            .next()
                            .map(str::to_string)
                    } else {
                        None
                    };
                    let live: Vec<usize> = live_at(&guards, i)
                        .into_iter()
                        .filter(|&g| {
                            let spared = |name: &Option<String>| match (&guards[g].var, name) {
                                (Some(v), Some(c)) => v == c,
                                _ => false,
                            };
                            !spared(&consumed) && !spared(&own_receiver)
                        })
                        .collect();
                    blocking.push(Blocking {
                        what: format!("`{op}` ({desc})"),
                        site: site_of(sig, i, line_starts),
                        guards_live: live,
                    });
                }
            }
            i += 1;
            continue;
        }

        // --- Call sites ---------------------------------------------------------
        if next == "(" && !CALL_KEYWORDS.contains(&t) && prev != "fn" && prev != "!" {
            let method = prev == ".";
            let qualifier = if prev == ":" && tx(i.saturating_sub(2)) == ":" {
                let q = tx(i.saturating_sub(3));
                if q.is_empty() {
                    None
                } else {
                    Some(q.to_string())
                }
            } else {
                None
            };
            let self_receiver =
                method && tx(i.saturating_sub(2)) == "self" && tx(i.saturating_sub(3)) != ".";
            calls.push(Call {
                callee: t.to_string(),
                qualifier,
                method,
                self_receiver,
                site: site_of(sig, i, line_starts),
                guards_live: live_at(&guards, i),
            });
        }
        i += 1;
    }

    FnScope {
        name,
        type_name,
        body: (open, close),
        guards,
        held_at_acquire,
        calls,
        blocking,
    }
}

/// For the condvar wait family, the guard variable the call consumes (its last
/// argument / sole argument): `wait_recover(&cv, state)` -> `state`,
/// `cv.wait(state)` -> `state`.
fn wait_consumed_guard(
    src: &str,
    sig: &[Token],
    op: &str,
    args_from: usize,
    args_to: usize,
) -> Option<String> {
    if !matches!(op, "wait" | "wait_timeout" | "wait_while" | "wait_recover") {
        return None;
    }
    // Last bare identifier at depth 0 inside the argument list.
    let mut depth = 0usize;
    let mut last = None;
    for i in args_from..args_to {
        match text(src, sig, i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            t if depth == 0 && sig.get(i).is_some_and(|t| t.kind == TokenKind::Ident) => {
                let _ = t;
                last = Some(text(src, sig, i).to_string());
            }
            _ => {}
        }
    }
    last
}

/// Index of the token matching the opener at `open` (`(`/`[`/`{`), capped at `end`.
fn match_forward(src: &str, sig: &[Token], open: usize, end: usize) -> usize {
    let (o, c) = match text(src, sig, open) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        let t = text(src, sig, i);
        if t == o {
            depth += 1;
        } else if t == c {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Canonical lock identity from an argument expression: identifiers and `.`/`::`
/// separators, with `&`, `*`, parens and a leading `self.` stripped.
fn normalize_chain(src: &str, sig: &[Token], from: usize, to: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for i in from..to {
        let t = text(src, sig, i);
        if sig.get(i).is_some_and(|tok| tok.kind == TokenKind::Ident) {
            parts.push(t);
        } else if !matches!(t, "&" | "*" | "(" | ")" | "." | ":" | "mut") {
            break;
        }
    }
    if parts.first() == Some(&"self") {
        parts.remove(0);
    }
    parts.join(".")
}

/// Canonical receiver chain ending at `last` (the token before `.method`):
/// walks back over `ident . ident`/`::` chains, then strips like
/// [`normalize_chain`].
fn receiver_chain(src: &str, sig: &[Token], last: usize, floor: usize) -> String {
    let mut first = last;
    while first > floor {
        let t = text(src, sig, first - 1);
        let is_link = matches!(t, "." | ":")
            || sig
                .get(first - 1)
                .is_some_and(|tok| tok.kind == TokenKind::Ident);
        if is_link {
            first -= 1;
        } else {
            break;
        }
    }
    normalize_chain(src, sig, first, last + 1)
}

/// If the acquisition at `at` sits in a `let [mut] name [: ty] =` statement,
/// returns the binding name and its live-range end; otherwise the temporary's
/// statement end.
fn binding_of(
    src: &str,
    sig: &[Token],
    at: usize,
    body_open: usize,
    body_close: usize,
) -> (Option<String>, usize) {
    // Walk back to the statement start: the token after the previous `;`, `{` or
    // `}` at this nesting level.  A conservative scan backwards is enough — any
    // of those tokens terminates the previous statement.
    let mut s = at;
    while s > body_open + 1 {
        let t = text(src, sig, s - 1);
        if matches!(t, ";" | "{" | "}") {
            break;
        }
        s -= 1;
    }
    let stmt_end = statement_end(src, sig, at, body_close);
    // `let [mut] name ... =` with the acquisition on the right of the `=`.
    if text(src, sig, s) == "let" {
        let mut n = s + 1;
        if text(src, sig, n) == "mut" {
            n += 1;
        }
        let name = text(src, sig, n);
        let named = sig.get(n).is_some_and(|t| t.kind == TokenKind::Ident) && name != "_";
        if named {
            let end = live_end(src, sig, name, stmt_end, at, body_close);
            return (Some(name.to_string()), end);
        }
    }
    // `name = wait_recover(..)` re-binding of an existing named guard.
    if sig.get(s).is_some_and(|t| t.kind == TokenKind::Ident) && text(src, sig, s + 1) == "=" {
        let name = text(src, sig, s);
        let end = live_end(src, sig, name, stmt_end, at, body_close);
        return (Some(name.to_string()), end);
    }
    (None, stmt_end)
}

/// The index of the `;` ending the statement containing `at` (or the enclosing
/// block close, whichever comes first).
fn statement_end(src: &str, sig: &[Token], at: usize, body_close: usize) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < body_close {
        match text(src, sig, i) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "}" => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body_close
}

/// The live-range end of a named guard bound at statement ending `stmt_end`:
/// the first `drop(name)`, a shadowing `let name`, or the close of the
/// enclosing block.
fn live_end(
    src: &str,
    sig: &[Token],
    name: &str,
    stmt_end: usize,
    at: usize,
    body_close: usize,
) -> usize {
    let block_close = enclosing_block_close(src, sig, at, body_close);
    let mut i = stmt_end;
    while i < block_close {
        let t = text(src, sig, i);
        if t == "drop" && text(src, sig, i + 1) == "(" && text(src, sig, i + 2) == name {
            return i + 3; // through `drop(name)`'s closing paren
        }
        if t == "let" {
            let mut n = i + 1;
            if text(src, sig, n) == "mut" {
                n += 1;
            }
            if text(src, sig, n) == name {
                return i;
            }
        }
        i += 1;
    }
    block_close
}

/// The index of the `}` closing the innermost block containing `at`.
fn enclosing_block_close(src: &str, sig: &[Token], at: usize, body_close: usize) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < body_close {
        match text(src, sig, i) {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    body_close
}

/// Byte offsets at which each line starts (line 0 at offset 0).
#[must_use]
pub fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{parse, significant};

    fn scopes(src: &str) -> Vec<FnScope> {
        let sig = significant(&lex(src));
        let items = parse(src, &sig);
        analyze_functions(src, &sig, &items, &line_starts(src))
    }

    #[test]
    fn lock_recover_binding_and_drop_narrow_the_range() {
        let src = "fn f() {\n    let state = lock_recover(&shared.state);\n    state.push(1);\n    drop(state);\n    other();\n}\n";
        let fns = scopes(src);
        assert_eq!(fns.len(), 1);
        let g = &fns[0].guards[0];
        assert_eq!(g.var.as_deref(), Some("state"));
        assert_eq!(g.lock, "shared.state");
        assert_eq!(g.site.line, 2);
        // `other()` is called after the drop: no guards live there.
        let other = fns[0].calls.iter().find(|c| c.callee == "other").unwrap();
        assert!(other.guards_live.is_empty());
        // `push` happens under the guard.
        let push = fns[0].calls.iter().find(|c| c.callee == "push").unwrap();
        assert_eq!(push.guards_live, vec![0]);
    }

    #[test]
    fn self_prefix_is_stripped_from_lock_identity() {
        let src = "impl P { fn take(&self) { let b = lock_recover(&self.free); b.pop(); } }";
        let fns = scopes(src);
        assert_eq!(fns[0].guards[0].lock, "free");
    }

    #[test]
    fn raw_mutex_guard_via_lock_method() {
        let src = "fn f(m: &Mutex<u8>) { let g = m.lock(); use_it(&g); }";
        let fns = scopes(src);
        assert_eq!(fns[0].guards[0].lock, "m");
        assert_eq!(fns[0].guards[0].var.as_deref(), Some("g"));
    }

    #[test]
    fn nested_acquisition_records_held_guard() {
        let src = "fn f() { let a = lock_recover(&left); let b = lock_recover(&right); }";
        let fns = scopes(src);
        assert_eq!(fns[0].guards.len(), 2);
        assert_eq!(fns[0].held_at_acquire[0], Vec::<usize>::new());
        assert_eq!(fns[0].held_at_acquire[1], vec![0]);
    }

    #[test]
    fn block_scoping_ends_the_guard() {
        let src = "fn f() { { let g = lock_recover(&l); g.touch(); } after(); }";
        let fns = scopes(src);
        let after = fns[0].calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(after.guards_live.is_empty());
    }

    #[test]
    fn wait_recover_consumes_its_own_guard() {
        let src = "fn f() { let mut state = lock_recover(&shared.state); while full() { state = wait_recover(&shared.not_full, state); } state.go(); }";
        let fns = scopes(src);
        // The wait consumes (and re-establishes) `state`: not a guard-across-
        // blocking violation.
        let wait = &fns[0].blocking[0];
        assert!(wait.what.contains("condvar wait"));
        assert!(wait.guards_live.is_empty(), "own guard is consumed");
    }

    #[test]
    fn recv_under_live_guard_is_flagged_live() {
        let src = "fn f() { let g = lock_recover(&l); let v = rx.recv(); use_it(g, v); }";
        let fns = scopes(src);
        let recv = &fns[0].blocking[0];
        assert!(recv.what.contains("channel receive"));
        assert_eq!(recv.guards_live, vec![0]);
    }

    #[test]
    fn join_with_separator_argument_is_not_blocking() {
        let src = "fn f() { let s = parts.join(\", \"); let h = handle.join(); }";
        let fns = scopes(src);
        assert_eq!(fns[0].blocking.len(), 1, "only the empty-arg join blocks");
    }

    #[test]
    fn temporary_guard_is_live_only_for_its_statement() {
        let src = "fn f() { lock_recover(&self.free).push(buf); rx.recv(); }";
        let fns = scopes(src);
        let recv = &fns[0].blocking[0];
        assert!(recv.guards_live.is_empty());
    }

    #[test]
    fn chained_guard_method_binds_the_result_not_the_guard() {
        // `let slot = map.read().get(&k).copied();` binds an Option, not the read
        // guard: the guard is a statement temporary, so the later write acquisition
        // does not see it held.
        let src = "fn f() { let slot = self.map.read().get(&k).copied(); self.map.write().insert(k, v); }";
        let fns = scopes(src);
        assert_eq!(fns[0].guards.len(), 2);
        assert_eq!(fns[0].guards[0].var, None);
        assert_eq!(fns[0].held_at_acquire[1], Vec::<usize>::new());
    }

    #[test]
    fn blocking_on_own_guard_is_exempt_but_other_guards_fire() {
        // `Mutex<File>`: the write serializes through its own guard (sanctioned) …
        let own = "fn f() { let mut file = self.file.lock(); file.write_all(&buf); }";
        let fns = scopes(own);
        assert!(fns[0].blocking[0].guards_live.is_empty());
        // … but an unrelated guard held across the same write still counts.
        let both =
            "fn f() { let g = lock_recover(&l); let mut file = self.file.lock(); file.write_all(&buf); drop(g); }";
        let fns = scopes(both);
        assert_eq!(fns[0].blocking[0].guards_live, vec![0]);
    }

    #[test]
    fn call_qualifiers_and_self_receivers_are_recorded() {
        let src = "impl Q { fn f(&self) { self.step(); json::parse(s); helper(); x.method(); } }";
        let fns = scopes(src);
        let call = |n: &str| fns[0].calls.iter().find(|c| c.callee == n).unwrap().clone();
        assert!(call("step").self_receiver);
        assert_eq!(call("parse").qualifier.as_deref(), Some("json"));
        assert!(!call("helper").method);
        assert!(call("method").method && !call("method").self_receiver);
    }
}
