//! A lightweight item-tree parser over the lossless lexer.
//!
//! The token-level rules of the first lint generation could not see *structure*:
//! which `fn` a token belongs to, whether an item is `#[cfg(test)]`-only, where a
//! block opens and closes.  This parser recovers exactly that much syntax — an item
//! tree of modules, functions, impls and type declarations with matched braces —
//! and nothing more.  It is not a Rust parser: expressions stay as flat token runs
//! for the scope/dataflow passes to walk.
//!
//! Guarantees mirrored from the lexer and relied on by `parser_proptest.rs`:
//!
//! 1. **Totality** — `parse` never fails and never panics, whatever token stream it
//!    is fed; unmatched delimiters run to end of input.
//! 2. **Tiling** — the returned root items tile the significant-token range exactly:
//!    `items[0].first == 0`, `items[i].last + 1 == items[i + 1].first`, and the last
//!    item ends at `sig.len() - 1` (when `sig` is non-empty).  Children tile the
//!    interior of their parent's body.  Because every item's byte span is
//!    `sig[first].start .. sig[last].end` and the lexer tiles the source,
//!    [`reconstruct`] rebuilds the input byte-for-byte from the tree — the span
//!    round-trip property.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name;` or `mod name { ... }`.
    Mod {
        /// Module name.
        name: String,
        /// `true` for `mod name { ... }` (children parsed), `false` for `mod name;`.
        inline: bool,
    },
    /// A function item (free or associated).
    Fn {
        /// Function name as written.
        name: String,
    },
    /// An `impl` block; children are its associated items.
    Impl {
        /// Last path segment of the self type (`Foo` in `impl<T> a::Foo<T> { .. }`).
        type_name: String,
    },
    /// A `struct` declaration (kept distinct so the dataflow pass can read fields).
    Struct {
        /// Struct name.
        name: String,
    },
    /// Anything else consumed as one item: enums, traits, uses, consts, statics,
    /// macro invocations, stray tokens on malformed input.
    Other,
}

/// One node of the item tree.  `first`/`last` are inclusive indices into the
/// significant-token slice the tree was parsed from; the byte span of the item is
/// `sig[first].start .. sig[last].end`.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item class and name.
    pub kind: ItemKind,
    /// `true` when one of the item's own attributes is `#[test]` / `#[cfg(test)]`
    /// (or `cfg(all(test, ..))` etc.; `cfg(not(test))` does *not* count).
    pub test_only: bool,
    /// First significant token of the item, including its attributes.
    pub first: usize,
    /// Last significant token of the item (inclusive).
    pub last: usize,
    /// For brace-bodied items: significant-token indices of the `{` and `}`.
    pub body: Option<(usize, usize)>,
    /// Nested items (inline mods and impl blocks only; fn bodies stay flat).
    pub children: Vec<Item>,
}

/// Filters a full lex to the significant (non-trivia) tokens the parser consumes.
#[must_use]
pub fn significant(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .copied()
        .filter(|t| !t.kind.is_trivia())
        .collect()
}

/// Parses a significant-token slice into a tree of root items.  Total: consumes
/// every token, never panics (see the module docs for the tiling guarantee).
#[must_use]
pub fn parse(src: &str, sig: &[Token]) -> Vec<Item> {
    let mut p = Parser { src, sig, pos: 0 };
    p.parse_items(sig.len())
}

/// Rebuilds the source from the root items' byte spans plus the trivia gaps between
/// them.  Equal to `src` whenever the tiling guarantee holds — the proptest uses
/// this as the span round-trip check.
#[must_use]
pub fn reconstruct(src: &str, sig: &[Token], items: &[Item]) -> String {
    let mut out = String::new();
    let mut at = 0usize;
    for item in items {
        let (Some(first), Some(last)) = (sig.get(item.first), sig.get(item.last)) else {
            continue;
        };
        out.push_str(src.get(at..first.start).unwrap_or(""));
        out.push_str(src.get(first.start..last.end).unwrap_or(""));
        at = last.end;
    }
    out.push_str(src.get(at..).unwrap_or(""));
    out
}

/// Marks every significant token covered by a test-only item (`#[test]` fns,
/// `#[cfg(test)]` mods/impls/items), recursively.  Rules consult this mask to skip
/// test code.
#[must_use]
pub fn test_mask(sig_len: usize, items: &[Item]) -> Vec<bool> {
    let mut mask = vec![false; sig_len];
    fn walk(items: &[Item], mask: &mut [bool]) {
        for item in items {
            if item.test_only {
                for slot in mask
                    .iter_mut()
                    .take(item.last + 1)
                    .skip(item.first.min(item.last + 1))
                {
                    *slot = true;
                }
            } else {
                walk(&item.children, mask);
            }
        }
    }
    walk(items, &mut mask);
    mask
}

/// Flattens the tree into every `Fn` item, paired with the enclosing impl type
/// name (if any) — `(Some("RequestQueue"), fn push)` — in source order.
#[must_use]
pub fn functions(items: &[Item]) -> Vec<(Option<String>, &Item)> {
    let mut out = Vec::new();
    fn walk<'a>(
        items: &'a [Item],
        enclosing: Option<&str>,
        out: &mut Vec<(Option<String>, &'a Item)>,
    ) {
        for item in items {
            match &item.kind {
                ItemKind::Fn { .. } => out.push((enclosing.map(str::to_string), item)),
                ItemKind::Impl { type_name } => walk(&item.children, Some(type_name), out),
                ItemKind::Mod { .. } => walk(&item.children, enclosing, out),
                _ => {}
            }
        }
    }
    walk(items, None, &mut out);
    out
}

/// Flattens the tree into every `Struct` item, in source order.
#[must_use]
pub fn structs(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
        for item in items {
            if matches!(item.kind, ItemKind::Struct { .. }) {
                out.push(item);
            }
            walk(&item.children, out);
        }
    }
    walk(items, &mut out);
    out
}

struct Parser<'a> {
    src: &'a str,
    sig: &'a [Token],
    pos: usize,
}

/// Keywords that can prefix `fn` in a signature.
const FN_QUALIFIERS: [&str; 4] = ["const", "unsafe", "async", "default"];

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.sig
            .get(i)
            .and_then(|t| self.src.get(t.start..t.end))
            .unwrap_or("")
    }

    fn is_ident(&self, i: usize) -> bool {
        self.sig.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn parse_items(&mut self, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end {
            items.push(self.parse_item(end));
        }
        items
    }

    /// Parses one item starting at `self.pos`; always consumes at least one token.
    fn parse_item(&mut self, end: usize) -> Item {
        let first = self.pos;
        let test_only = self.parse_attrs(end);
        // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if self.pos < end && self.text(self.pos) == "pub" {
            self.pos += 1;
            if self.pos < end && self.text(self.pos) == "(" {
                self.skip_balanced(end);
            }
        }
        // `const`/`unsafe`/`async`/`default` (plus `extern "C"`) qualify `fn` —
        // look ahead without consuming so `const NAME: T = ..;` still parses as a
        // plain item.
        let mut probe = self.pos;
        while probe < end {
            let t = self.text(probe);
            if FN_QUALIFIERS.contains(&t) {
                probe += 1;
            } else if t == "extern" {
                probe += 1;
                if self
                    .sig
                    .get(probe)
                    .is_some_and(|t| matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit))
                {
                    probe += 1;
                }
            } else {
                break;
            }
        }
        if probe > self.pos && probe < end && self.text(probe) == "fn" {
            self.pos = probe;
        }

        let kind = match self.text(self.pos) {
            "fn" if self.pos < end => return self.finish_fn(first, test_only, end),
            "mod" if self.pos < end => return self.finish_mod(first, test_only, end),
            "impl" if self.pos < end => return self.finish_impl(first, test_only, end),
            "struct" if self.pos < end => return self.finish_struct(first, test_only, end),
            "enum" | "union" | "trait" if self.pos < end && self.is_ident(self.pos) => {
                self.pos += 1;
                self.skip_to_body_or_semi(end);
                let body = self.consume_body_or_semi(end);
                return self.finish(first, test_only, ItemKind::Other, body, Vec::new());
            }
            "macro_rules" if self.pos < end => {
                self.pos += 1; // macro_rules
                if self.text(self.pos) == "!" {
                    self.pos += 1;
                }
                if self.is_ident(self.pos) {
                    self.pos += 1;
                }
                let opener = self.text(self.pos).to_string();
                self.skip_balanced(end);
                if opener != "{" && self.text(self.pos) == ";" {
                    self.pos += 1;
                }
                return self.finish(first, test_only, ItemKind::Other, None, Vec::new());
            }
            _ => ItemKind::Other,
        };

        // Everything else (use/type/static/const/extern crate/macro call/garbage):
        // consume to the first `;` outside any delimiter, or one token if we are
        // sitting on a closer/garbage so progress is guaranteed.
        if self.pos < end {
            let t = self.text(self.pos);
            if matches!(t, "}" | ")" | "]" | ";") {
                self.pos += 1;
                return self.finish(first, test_only, kind, None, Vec::new());
            }
        }
        // Item-level macro invocation (`thread_local! { .. }`, `define! ( .. );`):
        // a brace-delimited call ends at its `}`, not at a `;`.
        let mut j = self.pos;
        while j < end && (self.is_ident(j) || self.text(j) == ":") {
            j += 1;
        }
        if j > self.pos && j < end && self.text(j) == "!" {
            self.pos = j + 1;
            let opener = self.text(self.pos).to_string();
            self.skip_balanced(end);
            if opener != "{" && self.text(self.pos) == ";" {
                self.pos += 1;
            }
            return self.finish(first, test_only, kind, None, Vec::new());
        }
        let mut depth = 0usize;
        while self.pos < end {
            match self.text(self.pos) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break; // unmatched closer belongs to an enclosing block
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            self.pos += 1;
        }
        if self.pos == first {
            self.pos += 1; // attrs-only tail or empty: force progress
        }
        self.finish(first, test_only, kind, None, Vec::new())
    }

    fn finish_fn(&mut self, first: usize, test_only: bool, end: usize) -> Item {
        self.pos += 1; // `fn`
        let name = if self.is_ident(self.pos) {
            let n = self.text(self.pos).to_string();
            self.pos += 1;
            n
        } else {
            String::new()
        };
        self.skip_to_body_or_semi(end);
        let body = self.consume_body_or_semi(end);
        self.finish(first, test_only, ItemKind::Fn { name }, body, Vec::new())
    }

    fn finish_mod(&mut self, first: usize, test_only: bool, end: usize) -> Item {
        self.pos += 1; // `mod`
        let name = if self.is_ident(self.pos) {
            let n = self.text(self.pos).to_string();
            self.pos += 1;
            n
        } else {
            String::new()
        };
        if self.text(self.pos) == ";" {
            self.pos += 1;
            return self.finish(
                first,
                test_only,
                ItemKind::Mod {
                    name,
                    inline: false,
                },
                None,
                Vec::new(),
            );
        }
        let (body, children) = self.parse_braced_children(end);
        self.finish(
            first,
            test_only,
            ItemKind::Mod { name, inline: true },
            body,
            children,
        )
    }

    fn finish_impl(&mut self, first: usize, test_only: bool, end: usize) -> Item {
        self.pos += 1; // `impl`
        let header_start = self.pos;
        self.skip_to_body_or_semi(end);
        let type_name = self.impl_type_name(header_start, self.pos);
        let (body, children) = self.parse_braced_children(end);
        self.finish(
            first,
            test_only,
            ItemKind::Impl { type_name },
            body,
            children,
        )
    }

    fn finish_struct(&mut self, first: usize, test_only: bool, end: usize) -> Item {
        self.pos += 1; // `struct`
        let name = if self.is_ident(self.pos) {
            let n = self.text(self.pos).to_string();
            self.pos += 1;
            n
        } else {
            String::new()
        };
        self.skip_to_body_or_semi(end);
        let body = match self.text(self.pos) {
            "{" => self.consume_body_or_semi(end),
            "(" => {
                // Tuple struct: `struct P(u64, u64);`
                self.skip_balanced(end);
                // `where` clauses may follow the tuple; run to the `;`.
                self.skip_to_body_or_semi(end);
                if self.text(self.pos) == ";" {
                    self.pos += 1;
                }
                None
            }
            _ => {
                if self.text(self.pos) == ";" {
                    self.pos += 1;
                }
                None
            }
        };
        self.finish(
            first,
            test_only,
            ItemKind::Struct { name },
            body,
            Vec::new(),
        )
    }

    /// From `self.pos` on a `{`, consumes the brace pair parsing children inside.
    fn parse_braced_children(&mut self, end: usize) -> (Option<(usize, usize)>, Vec<Item>) {
        if self.text(self.pos) != "{" {
            // Malformed (e.g. truncated input): consume one token for progress.
            if self.pos < end {
                self.pos += 1;
            }
            return (None, Vec::new());
        }
        let open = self.pos;
        let close = self.matching_close(open, end);
        self.pos = open + 1;
        let children = self.parse_items(close);
        self.pos = close.min(end);
        if self.pos < end {
            self.pos += 1; // the `}` itself
        }
        (Some((open, self.pos.saturating_sub(1))), children)
    }

    /// Consumes `{ ... }` (flat, no child parsing) or a terminating `;`.
    fn consume_body_or_semi(&mut self, end: usize) -> Option<(usize, usize)> {
        match self.text(self.pos) {
            "{" => {
                let open = self.pos;
                let close = self.matching_close(open, end);
                self.pos = (close + 1).min(end);
                Some((open, close))
            }
            ";" => {
                self.pos += 1;
                None
            }
            _ => {
                if self.pos < end {
                    self.pos += 1; // truncated input: force progress
                }
                None
            }
        }
    }

    /// Advances to the next `{` or `;` at paren/bracket depth 0 (signature scan).
    /// Stops *on* the delimiter without consuming it.
    fn skip_to_body_or_semi(&mut self, end: usize) {
        let mut depth = 0usize;
        while self.pos < end {
            match self.text(self.pos) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" | ";" if depth == 0 => return,
                "}" if depth == 0 => return, // unmatched closer: enclosing block's
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Index of the `}` matching the `{` at `open` (or `end - 1` if unmatched).
    fn matching_close(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end.saturating_sub(1).max(open)
    }

    /// If `self.pos` is an opening delimiter, skips past its matched closer.
    fn skip_balanced(&mut self, end: usize) {
        let open = self.text(self.pos);
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => {
                if self.pos < end {
                    self.pos += 1;
                }
                return;
            }
        };
        let mut depth = 0usize;
        while self.pos < end {
            let t = self.text(self.pos);
            if t == open {
                depth += 1;
            } else if t == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Consumes leading `#[...]` / `#![...]` attributes; returns whether any of
    /// them marks the item test-only.
    fn parse_attrs(&mut self, end: usize) -> bool {
        let mut test_only = false;
        while self.pos < end && self.text(self.pos) == "#" {
            let mut j = self.pos + 1;
            if self.text(j) == "!" {
                j += 1;
            }
            if self.text(j) != "[" {
                break; // `#` not starting an attribute: leave for the item body
            }
            let attr_open = j;
            // Find the matching `]`.
            let mut depth = 0usize;
            let mut close = attr_open;
            while close < end {
                match self.text(close) {
                    "[" => depth += 1,
                    "]" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            if attr_is_test_only(self.src, self.sig, attr_open + 1, close.min(end)) {
                test_only = true;
            }
            self.pos = (close + 1).min(end);
        }
        test_only
    }

    /// Extracts the self-type name from an impl header token range: the last path
    /// segment outside generics, after `for` if a trait impl, before `where`.
    fn impl_type_name(&self, start: usize, end: usize) -> String {
        let mut angle = 0usize;
        let mut after_for = None;
        let mut header_end = end;
        for i in start..end {
            match self.text(i) {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "for" if angle == 0 => after_for = Some(i + 1),
                "where" if angle == 0 => {
                    header_end = i;
                    break;
                }
                _ => {}
            }
        }
        let from = after_for.unwrap_or(start);
        let mut name = String::new();
        let mut angle = 0usize;
        for i in from..header_end {
            match self.text(i) {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                t if angle == 0 && self.is_ident(i) && t != "dyn" && t != "mut" => {
                    name = t.to_string();
                }
                _ => {}
            }
        }
        name
    }

    fn finish(
        &mut self,
        first: usize,
        test_only: bool,
        kind: ItemKind,
        body: Option<(usize, usize)>,
        children: Vec<Item>,
    ) -> Item {
        let last = self.pos.saturating_sub(1).max(first);
        Item {
            kind,
            test_only,
            first,
            last,
            body,
            children,
        }
    }
}

/// Whether the attribute tokens in `sig[start..end]` (inside the brackets) mark an
/// item as test-only: `test`, `cfg(test)`, `cfg(all(test, ..))` — but not
/// `cfg(not(test))` and not `cfg_attr(test, ..)`.
fn attr_is_test_only(src: &str, sig: &[Token], start: usize, end: usize) -> bool {
    let text = |i: usize| {
        sig.get(i)
            .and_then(|t| src.get(t.start..t.end))
            .unwrap_or("")
    };
    let head = text(start);
    if head == "test" {
        return true;
    }
    if head != "cfg" {
        return false;
    }
    // Track the enclosing call idents so `not(test)` is recognised at any depth.
    let mut call_stack: Vec<&str> = Vec::new();
    let mut prev_ident = "";
    for i in start..end {
        match text(i) {
            "(" => {
                call_stack.push(prev_ident);
                prev_ident = "";
            }
            ")" => {
                call_stack.pop();
            }
            "test" => {
                if !call_stack.contains(&"not") {
                    return true;
                }
            }
            t if sig.get(i).is_some_and(|t| t.kind == TokenKind::Ident) => {
                let _ = t;
                prev_ident = text(i);
            }
            _ => prev_ident = "",
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<Token>, Vec<Item>) {
        let sig = significant(&lex(src));
        let items = parse(src, &sig);
        (sig, items)
    }

    fn assert_tiling(sig_len: usize, items: &[Item]) {
        if items.is_empty() {
            assert_eq!(sig_len, 0);
            return;
        }
        assert_eq!(items[0].first, 0);
        for w in items.windows(2) {
            assert_eq!(w[0].last + 1, w[1].first, "root items must tile");
        }
        assert_eq!(items.last().map(|i| i.last), Some(sig_len - 1));
    }

    #[test]
    fn parses_fns_mods_impls() {
        let src = r"
            pub fn free(x: u64) -> u64 { x + 1 }
            mod inner {
                fn nested() {}
            }
            struct P { a: u64 }
            impl P {
                pub(crate) fn get(&self) -> u64 { self.a }
            }
        ";
        let (sig, items) = tree(src);
        assert_tiling(sig.len(), &items);
        assert!(matches!(&items[0].kind, ItemKind::Fn { name } if name == "free"));
        assert!(matches!(&items[1].kind, ItemKind::Mod { name, inline: true } if name == "inner"));
        assert!(matches!(&items[1].children[0].kind, ItemKind::Fn { name } if name == "nested"));
        assert!(matches!(&items[2].kind, ItemKind::Struct { name } if name == "P"));
        assert!(matches!(&items[3].kind, ItemKind::Impl { type_name } if type_name == "P"));
        let fns = functions(&items);
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[2].0.as_deref(), Some("P"));
    }

    #[test]
    fn reconstruct_round_trips() {
        let src = "const X: [u8; 2] = [1, 2];\nfn f() { let v = vec![X { y: 1 }]; }\n";
        let (sig, items) = tree(src);
        assert_eq!(reconstruct(src, &sig, &items), src);
    }

    #[test]
    fn const_item_with_struct_literal_is_one_item() {
        let src = "const A: Foo = Foo { a: 1 };\nfn later() {}\n";
        let (sig, items) = tree(src);
        assert_tiling(sig.len(), &items);
        assert_eq!(items.len(), 2);
        assert!(matches!(&items[1].kind, ItemKind::Fn { name } if name == "later"));
    }

    #[test]
    fn const_fn_is_a_fn() {
        let (_, items) = tree("const fn two() -> u64 { 2 }");
        assert!(matches!(&items[0].kind, ItemKind::Fn { name } if name == "two"));
    }

    #[test]
    fn trait_impl_names_the_self_type() {
        let (_, items) = tree("impl<T: Clone> Iterator for Wrapper<T> where T: Send { fn next(&mut self) -> Option<T> { None } }");
        assert!(matches!(&items[0].kind, ItemKind::Impl { type_name } if type_name == "Wrapper"));
        let fns = functions(&items);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].0.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn test_attrs_mark_items() {
        let src = r"
            #[test]
            fn unit() { assert!(true); }
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
            #[cfg(all(test, feature = \x22x\x22))]
            fn gated() {}
            #[cfg(not(test))]
            fn shipping() {}
            fn plain() {}
        ";
        let src = &src.replace("\\x22", "\"");
        let (sig, items) = tree(src);
        assert!(items[0].test_only, "#[test] fn");
        assert!(items[1].test_only, "#[cfg(test)] mod");
        assert!(items[2].test_only, "cfg(all(test, ..))");
        assert!(!items[3].test_only, "cfg(not(test)) is NOT test-only");
        assert!(!items[4].test_only);
        let mask = test_mask(sig.len(), &items);
        assert!(mask[items[0].first] && mask[items[1].last]);
        assert!(!mask[items[4].first]);
    }

    #[test]
    fn unbalanced_input_is_total() {
        for src in [
            "fn f() { {",
            "impl X { fn g(",
            "}}}",
            "mod m { fn",
            "#[cfg(test)",
            "pub pub fn",
            "struct S(",
        ] {
            let sig = significant(&lex(src));
            let items = parse(src, &sig);
            assert_tiling(sig.len(), &items);
            assert_eq!(reconstruct(src, &sig, &items), src);
        }
    }

    #[test]
    fn fn_signatures_with_braces_in_generics_do_not_confuse_bodies() {
        let src = "fn f(xs: [u8; 3]) -> u8 { xs.len() as u8 }";
        let (_, items) = tree(src);
        let ItemKind::Fn { name } = &items[0].kind else {
            panic!("expected fn")
        };
        assert_eq!(name, "f");
        assert!(items[0].body.is_some());
    }

    #[test]
    fn macro_rules_and_macro_calls_parse_as_other() {
        let src =
            "macro_rules! m { () => {}; }\nthread_local! { static X: u8 = 0; }\nfn after() {}\n";
        let (sig, items) = tree(src);
        assert_tiling(sig.len(), &items);
        assert!(
            matches!(&items.last().map(|i| &i.kind), Some(ItemKind::Fn { name }) if name == "after")
        );
    }
}
