//! `tailbench lint`: in-tree static analysis for the invariants the compiler cannot
//! see.
//!
//! The whole reproduction rests on three properties that are otherwise enforced only
//! by review: DES runs must be bit-exact (the golden tests and the `BENCH_<n>.json`
//! hard gate depend on it), the measurement hot paths must not panic mid-run, and
//! every random draw must flow from the root seed so sweep rows stay comparable.
//! This crate makes those invariants machine-checkable with a self-contained pass —
//! no external dependencies, consistent with the offline build — built on a small
//! lossless Rust lexer ([`lexer`]), an item-tree parser ([`parser`]), a per-function
//! scope/guard analysis ([`scope`]), a coarse intraprocedural dataflow
//! ([`dataflow`]), a one-level workspace call graph ([`callgraph`]) and the rule
//! engine tying them together ([`rules`]):
//!
//! | rule | scope | forbids |
//! |---|---|---|
//! | `no-wallclock-in-sim` | DES/simulation modules | `Instant::now`, `SystemTime::now`, `unix_time` |
//! | `no-panic-hotpath` | designated hot-path modules | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, direct indexing |
//! | `no-unseeded-rng` | everywhere outside `stubs/` | `thread_rng`, `from_entropy`, seeding from time |
//! | `no-unordered-iteration-in-reports` | report/JSON-emitting modules | `HashMap`/`HashSet` |
//! | `lock-order-cycle` | workspace-wide | inconsistent lock acquisition order (deadlock candidates) |
//! | `guard-across-blocking` | workspace-wide | a live lock guard spanning a blocking operation |
//! | `no-lossy-cast-in-stats` | histogram + report paths | truncating/precision-losing `as` casts |
//! | `no-unchecked-arith-in-histogram` | `crates/histogram` | unchecked `+`/`*` integer bucket math |
//!
//! Every rule honours a justification-required pragma:
//!
//! ```text
//! // tailbench-lint: allow(no-panic-hotpath) -- index bounded by the loop invariant
//! ```
//!
//! An allow without a non-empty `-- <reason>` is itself a finding
//! (`unjustified-allow`), so the tree can never silently accumulate blanket waivers;
//! `tailbench lint --pragmas` audits the surviving ones against a committed budget.
//! Findings are also exported machine-readably through the workspace's canonical JSON
//! codec ([`tailbench_experiment::json`]).

pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod scope;

pub use rules::{
    analyze_source, classify, finish, lint_source, FileAnalysis, FileClasses, Finding, Pragma,
    Rule, ALL_RULES,
};

use std::path::{Path, PathBuf};
use tailbench_experiment::json::Json;

/// The outcome of linting a file tree.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Every allow pragma in the tree, sorted by (path, line) — the audit trail
    /// behind `--pragmas` and the committed pragma budget.
    pub pragmas: Vec<(String, Pragma)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when no rule fired and every allow pragma is justified.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One `path:line:col: rule: message` line per finding, plus a summary line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "tailbench lint: {} finding(s) across {} file(s)\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }

    /// The pragma audit: one `path:line: allow(<rules>) -- <reason>` line per
    /// pragma, plus a count line.  This is what the CI pragma budget diffs.
    #[must_use]
    pub fn render_pragmas(&self) -> String {
        let mut out = String::new();
        for (path, pragma) in &self.pragmas {
            let rules: Vec<&str> = pragma.rules.iter().map(|r| r.name()).collect();
            out.push_str(&format!(
                "{path}:{}: allow({}) -- {}\n",
                pragma.line,
                rules.join(", "),
                pragma.reason
            ));
        }
        out.push_str(&format!(
            "tailbench lint: {} pragma(s)\n",
            self.pragmas.len()
        ));
        out
    }

    /// The machine-readable form, via the canonical in-tree JSON codec.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("files_scanned", Json::U64(self.files_scanned as u64)),
            ("clean", Json::Bool(self.is_clean())),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("rule", Json::str(f.rule.name())),
                                ("path", Json::str(&f.path)),
                                ("line", Json::U64(f.line as u64)),
                                ("col", Json::U64(f.col as u64)),
                                ("message", Json::str(&f.message)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pragmas",
                Json::Arr(
                    self.pragmas
                        .iter()
                        .map(|(path, p)| {
                            Json::obj(vec![
                                ("path", Json::str(path)),
                                ("line", Json::U64(p.line as u64)),
                                (
                                    "rules",
                                    Json::Arr(
                                        p.rules.iter().map(|r| Json::str(r.name())).collect(),
                                    ),
                                ),
                                ("reason", Json::str(&p.reason)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The canonical JSON text (pretty-printed, trailing newline).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_text_pretty()
    }
}

/// Directory names never descended into: build output, VCS metadata.
const SKIP_DIRS: [&str; 2] = ["target", ".git"];

/// Path prefixes excluded from the workspace walk: the lint's own violation fixtures
/// (they exist to fire rules) live here.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/tests/fixtures"];

/// Lints every `.rs` file under `root` (the workspace checkout), returning the
/// aggregate report.  Per-file passes feed one workspace pass ([`finish`]) that
/// runs the cross-file lock-order analysis.  The file list is sorted, so the
/// report is deterministic.
///
/// # Errors
///
/// Returns the underlying I/O error if the tree cannot be read.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let files_scanned = files.len();
    let mut analyses = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        analyses.push(analyze_source(&rel_str, &source));
    }
    let (findings, pragmas) = finish(analyses);
    Ok(LintReport {
        findings,
        pragmas,
        files_scanned,
    })
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref())
                || SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p))
            {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p)) {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_text_and_json() {
        let report = LintReport {
            findings: vec![Finding {
                rule: Rule::NoPanicHotpath,
                path: "crates/core/src/queue.rs".to_string(),
                line: 7,
                col: 13,
                message: "`.unwrap()` on a hot path".to_string(),
            }],
            pragmas: Vec::new(),
            files_scanned: 3,
        };
        let text = report.render_text();
        assert!(text.contains("crates/core/src/queue.rs:7:13: no-panic-hotpath"));
        assert!(text.contains("1 finding(s) across 3 file(s)"));
        assert!(!report.is_clean());

        let json = report.to_json_string();
        assert!(json.contains("\"no-panic-hotpath\""));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"col\": 13"));
        let parsed = tailbench_experiment::json::parse(&json).expect("canonical JSON reparses");
        assert_eq!(parsed.get("files_scanned").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn clean_report_is_clean() {
        let report = LintReport {
            findings: Vec::new(),
            pragmas: Vec::new(),
            files_scanned: 1,
        };
        assert!(report.is_clean());
        assert!(report.to_json_string().contains("\"clean\": true"));
    }

    #[test]
    fn pragma_audit_renders() {
        let report = LintReport {
            findings: Vec::new(),
            pragmas: vec![(
                "crates/core/src/pool.rs".to_string(),
                Pragma {
                    rules: vec![Rule::NoPanicHotpath],
                    reason: "bounded by construction".to_string(),
                    line: 12,
                    covers: 13,
                },
            )],
            files_scanned: 1,
        };
        let text = report.render_pragmas();
        assert!(text.contains(
            "crates/core/src/pool.rs:12: allow(no-panic-hotpath) -- bounded by construction"
        ));
        assert!(text.contains("1 pragma(s)"));
    }
}
