//! A small, lossless Rust lexer.
//!
//! The lint rules are *token-level*, not textual: an occurrence of `.unwrap()` inside a
//! string literal or a comment must never fire a rule.  This lexer produces exactly the
//! token classes the rules need — trivia (whitespace and comments, which rules skip but
//! the pragma parser reads), identifiers, the full literal family (strings, raw
//! strings, byte strings, chars vs. lifetimes), numbers and punctuation.
//!
//! Two properties the rule engine and the proptest suite rely on:
//!
//! 1. **Totality** — `lex` never fails and never panics, whatever bytes it is fed
//!    (unterminated literals run to end of input).
//! 2. **Tiling** — the returned tokens cover the input exactly: `tokens[0].start == 0`,
//!    `tokens[i].end == tokens[i + 1].start`, and the last token ends at `src.len()`.
//!    Re-slicing the source by token spans therefore reconstructs it byte-for-byte.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// A `// ...` comment, excluding the terminating newline.
    LineComment,
    /// A `/* ... */` comment (nesting handled; unterminated runs to end of input).
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// A character literal such as `'x'` or `'\n'`.
    CharLit,
    /// A `"..."` string literal (escapes handled).
    StrLit,
    /// A raw string literal `r"..."` / `r#"..."#` (any number of hashes).
    RawStrLit,
    /// A byte string `b"..."` or raw byte string `br#"..."#`.
    ByteStrLit,
    /// A numeric literal (integer or float, any base or suffix).
    NumLit,
    /// A single punctuation character.
    Punct,
}

impl TokenKind {
    /// Trivia tokens are skipped by the rules (but scanned by the pragma parser).
    #[must_use]
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }

    /// Literal tokens whose *content* must never trigger a rule.
    #[must_use]
    pub fn is_literal(self) -> bool {
        matches!(
            self,
            TokenKind::CharLit
                | TokenKind::StrLit
                | TokenKind::RawStrLit
                | TokenKind::ByteStrLit
                | TokenKind::NumLit
        )
    }
}

/// One token: its class and byte span (`start..end`) in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Tokenizes `src` completely (see the module docs for the tiling guarantee).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let kind = scan_token(src, bytes, &mut pos);
        debug_assert!(pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            start,
            end: pos,
        });
    }
    tokens
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Consumes one token starting at `*pos`, advancing `*pos` past it.
fn scan_token(src: &str, bytes: &[u8], pos: &mut usize) -> TokenKind {
    let b = bytes[*pos];
    match b {
        _ if b.is_ascii_whitespace() => {
            while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
            TokenKind::Whitespace
        }
        b'/' if peek(bytes, *pos + 1) == Some(b'/') => {
            while *pos < bytes.len() && bytes[*pos] != b'\n' {
                *pos += 1;
            }
            TokenKind::LineComment
        }
        b'/' if peek(bytes, *pos + 1) == Some(b'*') => {
            *pos += 2;
            let mut depth = 1usize;
            while *pos < bytes.len() && depth > 0 {
                if bytes[*pos] == b'/' && peek(bytes, *pos + 1) == Some(b'*') {
                    depth += 1;
                    *pos += 2;
                } else if bytes[*pos] == b'*' && peek(bytes, *pos + 1) == Some(b'/') {
                    depth -= 1;
                    *pos += 2;
                } else {
                    *pos += 1;
                }
            }
            TokenKind::BlockComment
        }
        b'r' | b'b' => scan_prefixed(bytes, pos),
        b'"' => {
            *pos += 1;
            scan_quoted(bytes, pos, b'"');
            TokenKind::StrLit
        }
        b'\'' => scan_quote(bytes, pos),
        _ if b.is_ascii_digit() => {
            *pos += 1;
            scan_number_rest(bytes, pos);
            TokenKind::NumLit
        }
        _ if is_ident_start(b) => {
            scan_ident(bytes, pos);
            TokenKind::Ident
        }
        _ => {
            // A single punctuation character; step a whole `char` so multi-byte
            // punctuation (which can't start an ident by the >= 0x80 rule above —
            // it can, so this arm only sees ASCII) stays well-formed.
            let ch_len = src[*pos..].chars().next().map_or(1, char::len_utf8);
            *pos += ch_len;
            TokenKind::Punct
        }
    }
}

fn peek(bytes: &[u8], at: usize) -> Option<u8> {
    bytes.get(at).copied()
}

fn scan_ident(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && is_ident_continue(bytes[*pos]) {
        *pos += 1;
    }
}

/// Consumes the body of an escaped quoted literal up to and including the closing
/// `close` byte (or end of input for unterminated literals).  `*pos` starts just past
/// the opening quote.
fn scan_quoted(bytes: &[u8], pos: &mut usize, close: u8) {
    while *pos < bytes.len() {
        let b = bytes[*pos];
        if b == b'\\' {
            // Skip the escape introducer and, if present, the escaped byte.
            *pos += 1;
            if *pos < bytes.len() {
                *pos += 1;
            }
        } else if b == close {
            *pos += 1;
            return;
        } else {
            *pos += 1;
        }
    }
}

/// Tokens that start with `r` or `b`: raw strings, byte strings, raw byte strings, raw
/// identifiers — or a plain identifier when none of the literal forms match.
fn scan_prefixed(bytes: &[u8], pos: &mut usize) -> TokenKind {
    let first = bytes[*pos];
    let mut look = *pos + 1;
    let mut raw = first == b'r';
    let byte = first == b'b';
    if byte && peek(bytes, look) == Some(b'r') {
        raw = true;
        look += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while peek(bytes, look) == Some(b'#') {
            hashes += 1;
            look += 1;
        }
        if peek(bytes, look) == Some(b'"') {
            *pos = look + 1;
            scan_raw_body(bytes, pos, hashes);
            return if byte {
                TokenKind::ByteStrLit
            } else {
                TokenKind::RawStrLit
            };
        }
        if !byte && hashes == 1 && peek(bytes, look).is_some_and(is_ident_start) {
            // Raw identifier `r#match`.
            *pos = look;
            scan_ident(bytes, pos);
            return TokenKind::Ident;
        }
    } else if byte {
        match peek(bytes, look) {
            Some(b'"') => {
                *pos = look + 1;
                scan_quoted(bytes, pos, b'"');
                return TokenKind::ByteStrLit;
            }
            Some(b'\'') => {
                *pos = look + 1;
                scan_quoted(bytes, pos, b'\'');
                return TokenKind::CharLit;
            }
            _ => {}
        }
    }
    scan_ident(bytes, pos);
    TokenKind::Ident
}

/// Consumes a raw-string body up to and including `"` followed by `hashes` `#`s.
fn scan_raw_body(bytes: &[u8], pos: &mut usize, hashes: usize) {
    while *pos < bytes.len() {
        if bytes[*pos] == b'"' {
            let mut seen = 0usize;
            while seen < hashes && peek(bytes, *pos + 1 + seen) == Some(b'#') {
                seen += 1;
            }
            if seen == hashes {
                *pos += 1 + hashes;
                return;
            }
        }
        *pos += 1;
    }
}

/// `'` starts a lifetime, a char literal, or (for degenerate input) a lone quote.
fn scan_quote(bytes: &[u8], pos: &mut usize) -> TokenKind {
    match peek(bytes, *pos + 1) {
        Some(b'\\') => {
            *pos += 1;
            scan_quoted(bytes, pos, b'\'');
            TokenKind::CharLit
        }
        Some(next) if is_ident_continue(next) => {
            // `'a'` is a char literal, `'a` (no closing quote after the ident run) a
            // lifetime.  The run also covers multi-byte chars like `'日'`.
            let mut look = *pos + 1;
            while look < bytes.len() && is_ident_continue(bytes[look]) {
                look += 1;
            }
            if peek(bytes, look) == Some(b'\'') {
                *pos = look + 1;
                TokenKind::CharLit
            } else {
                *pos = look;
                TokenKind::Lifetime
            }
        }
        // `'('` and friends: a single quoted non-ident char.
        Some(next) if next != b'\'' && peek(bytes, *pos + 2) == Some(b'\'') => {
            *pos += 3;
            TokenKind::CharLit
        }
        _ => {
            *pos += 1;
            TokenKind::Punct
        }
    }
}

/// Consumes the rest of a numeric literal: alphanumerics, underscores, and a decimal
/// point when (and only when) a digit follows it, so `0..n` lexes as `0` `.` `.` `n`.
fn scan_number_rest(bytes: &[u8], pos: &mut usize) {
    loop {
        match peek(bytes, *pos) {
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => *pos += 1,
            Some(b'.') if peek(bytes, *pos + 1).is_some_and(|d| d.is_ascii_digit()) => {
                *pos += 1;
            }
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn assert_tiling(src: &str) {
        let tokens = lex(src);
        let mut at = 0usize;
        for token in &tokens {
            assert_eq!(token.start, at, "gap or overlap in {src:?}");
            assert!(token.end > token.start);
            at = token.end;
        }
        assert_eq!(at, src.len(), "tokens must cover all of {src:?}");
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("let x = a.unwrap();");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap")));
        assert!(toks.contains(&(TokenKind::Punct, ".")));
        assert_tiling("let x = a.unwrap();");
    }

    #[test]
    fn strings_hide_their_content() {
        let src = r#"let s = "a.unwrap() // not a comment";"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, text)| *k == TokenKind::StrLit && text.contains("unwrap")));
        assert!(!toks
            .iter()
            .any(|(k, text)| *k == TokenKind::Ident && *text == "unwrap"));
        assert_tiling(src);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r##"let s = r#"panic!("x") "quoted""#;"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, text)| *k == TokenKind::RawStrLit && text.contains("panic")));
        assert_tiling(src);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        for src in ["let b = b\"bytes\";", "let b = br#\"raw \" bytes\"#;"] {
            let toks = kinds(src);
            assert!(toks.iter().any(|(k, _)| *k == TokenKind::ByteStrLit));
            assert_tiling(src);
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && *t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::CharLit && *t == "'x'"));
        assert_tiling(src);
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["'\\n'", "'\\''", "'\\\\'", "'\\u{1F600}'"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?} lexes as one token");
            assert_eq!(toks[0].kind, TokenKind::CharLit, "{src:?}");
            assert_tiling(src);
        }
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ x";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, text)| *k == TokenKind::BlockComment && text.contains("inner")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "x"));
        assert_tiling(src);
    }

    #[test]
    fn line_comment_excludes_newline() {
        let src = "// note\nx";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::LineComment, "// note"));
        assert_eq!(toks[1], (TokenKind::Whitespace, "\n"));
        assert_tiling(src);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#match"));
        assert_tiling("let r#match = 1;");
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5e3_f64; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && *t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && *t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && *t == "1.5e3_f64"));
        assert_tiling("for i in 0..10 { let f = 1.5e3_f64; }");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        for src in [
            "",
            "'",
            "''",
            "'''",
            "\"",
            "\"\\",
            "r#",
            "r#\"",
            "b'",
            "b\"",
            "/*",
            "/*/",
            "'\\",
            "r#\"unterminated",
            "br##\"x\"#",
        ] {
            assert_tiling(src);
        }
    }
}
