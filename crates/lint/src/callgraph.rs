//! A one-level call graph across the workspace, and the global lock-order graph
//! built on top of it.
//!
//! Every function's [`crate::scope::FnScope`] contributes:
//!
//! * **intra-function edges** — guard `A` live while guard `B` is acquired;
//! * **propagated edges** — guard `A` live at a call site whose callee acquires
//!   `B` (one level deep, no transitive closure);
//! * **propagated blocking** — guard `A` live at a call site whose callee
//!   performs a blocking operation directly.
//!
//! Call resolution is deliberately conservative (soundness limits documented in
//! DESIGN.md): `Type::assoc(..)` and direct `self.method(..)` calls resolve
//! exactly; a bare or method name otherwise resolves only when the workspace
//! defines exactly one function with that name.  No trait dispatch, no closures.
//! Lock identities are crate-qualified (`core:shared.state`) so same-named
//! fields in different crates never alias.
//!
//! A cycle in the lock-order graph — including a self-loop, which is a
//! re-entrant acquisition of a non-reentrant `std::sync::Mutex` — is a deadlock
//! candidate; the report names every acquisition site along the cycle.

use crate::scope::{FnScope, Site};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One lock-order edge: `held` was live while `acquired` was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Crate-qualified identity of the held lock.
    pub held: String,
    /// File where the held lock was acquired.
    pub held_path: String,
    /// Acquisition site of the held lock.
    pub held_site: Site,
    /// Crate-qualified identity of the lock acquired under `held`.
    pub acquired: String,
    /// File where the nested acquisition happens.
    pub acquired_path: String,
    /// Site of the nested acquisition.
    pub acquired_site: Site,
    /// For propagated edges: "call to `callee` at path:line:col".
    pub via: Option<String>,
}

/// A deadlock candidate: the edges of one cycle in the lock-order graph.
#[derive(Debug, Clone)]
pub struct Cycle {
    /// Edges in cycle order; `edges[i].acquired == edges[i + 1].held` and the
    /// last edge's `acquired` equals the first edge's `held`.
    pub edges: Vec<Edge>,
}

/// A call made while holding a guard, into a function that blocks directly.
#[derive(Debug, Clone)]
pub struct BlockedCall {
    /// File of the call site.
    pub path: String,
    /// The call site.
    pub site: Site,
    /// Called function name.
    pub callee: String,
    /// What the callee blocks on (first blocking op's description).
    pub what: String,
    /// Unqualified identity of the held lock.
    pub lock: String,
    /// Acquisition site of the held lock.
    pub lock_site: Site,
}

/// The workspace-level concurrency analysis result.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Deadlock-candidate cycles, deterministic order, deduplicated by member
    /// lock set.
    pub cycles: Vec<Cycle>,
    /// Guard-held calls into directly-blocking functions.
    pub blocked_calls: Vec<BlockedCall>,
}

/// The crate a workspace-relative path belongs to, for lock qualification.
fn crate_of(path: &str) -> &str {
    for prefix in ["crates/", "stubs/"] {
        if let Some(rest) = path.strip_prefix(prefix) {
            return rest.split('/').next().unwrap_or(rest);
        }
    }
    "tailbench"
}

/// Builds the lock-order graph over every function in `files` (path paired with
/// that file's non-test function scopes) and extracts cycles and blocked calls.
#[must_use]
pub fn analyze(files: &[(String, Vec<FnScope>)]) -> Analysis {
    // --- Function index for call resolution -------------------------------------
    // Keyed twice: "Type::name" for exact associated-fn hits, bare "name" for the
    // unique-name fallback.
    let mut by_qual: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, (_, fns)) in files.iter().enumerate() {
        for (gi, f) in fns.iter().enumerate() {
            if let Some(t) = &f.type_name {
                by_qual
                    .entry(format!("{t}::{}", f.name))
                    .or_default()
                    .push((fi, gi));
            }
            by_name.entry(f.name.clone()).or_default().push((fi, gi));
        }
    }
    let resolve = |callee: &str,
                   qualifier: Option<&str>,
                   self_type: Option<&str>|
     -> Option<(usize, usize)> {
        if let Some(q) = qualifier {
            if let Some(hits) = by_qual.get(&format!("{q}::{callee}")) {
                if hits.len() == 1 {
                    return Some(hits[0]);
                }
            }
        }
        if let Some(t) = self_type {
            if let Some(hits) = by_qual.get(&format!("{t}::{callee}")) {
                if hits.len() == 1 {
                    return Some(hits[0]);
                }
            }
        }
        match by_name.get(callee) {
            Some(hits) if hits.len() == 1 => Some(hits[0]),
            _ => None,
        }
    };

    // --- Edges ------------------------------------------------------------------
    let mut edges: Vec<Edge> = Vec::new();
    let mut blocked_calls: Vec<BlockedCall> = Vec::new();
    for (path, fns) in files {
        let qual = |lock: &str| format!("{}:{lock}", crate_of(path));
        for f in fns {
            // Intra-function nesting.
            for (gi, held_set) in f.held_at_acquire.iter().enumerate() {
                for &hi in held_set {
                    let held = &f.guards[hi];
                    let acq = &f.guards[gi];
                    edges.push(Edge {
                        held: qual(&held.lock),
                        held_path: path.clone(),
                        held_site: held.site,
                        acquired: qual(&acq.lock),
                        acquired_path: path.clone(),
                        acquired_site: acq.site,
                        via: None,
                    });
                }
            }
            // One-level propagation through calls made under a guard.
            for call in &f.calls {
                if call.guards_live.is_empty() {
                    continue;
                }
                let self_type = if call.self_receiver {
                    f.type_name.as_deref()
                } else {
                    None
                };
                let Some((ci, cg)) = resolve(&call.callee, call.qualifier.as_deref(), self_type)
                else {
                    continue;
                };
                let (callee_path, callee_fns) = &files[ci];
                let callee = &callee_fns[cg];
                let callee_qual = |lock: &str| format!("{}:{lock}", crate_of(callee_path));
                for &hi in &call.guards_live {
                    let held = &f.guards[hi];
                    for acq in &callee.guards {
                        edges.push(Edge {
                            held: qual(&held.lock),
                            held_path: path.clone(),
                            held_site: held.site,
                            acquired: callee_qual(&acq.lock),
                            acquired_path: callee_path.clone(),
                            acquired_site: acq.site,
                            via: Some(format!(
                                "call to `{}` at {}:{}:{}",
                                call.callee, path, call.site.line, call.site.col
                            )),
                        });
                    }
                    if let Some(b) = callee.blocking.first() {
                        blocked_calls.push(BlockedCall {
                            path: path.clone(),
                            site: call.site,
                            callee: call.callee.clone(),
                            what: b.what.clone(),
                            lock: held.lock.clone(),
                            lock_site: held.site,
                        });
                    }
                }
            }
        }
    }
    edges.dedup();

    // --- Cycle extraction --------------------------------------------------------
    let mut adj: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(e.held.as_str()).or_default().push(i);
    }
    let mut cycles = Vec::new();
    let mut seen: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for (i, e) in edges.iter().enumerate() {
        let cycle_edges = if e.held == e.acquired {
            Some(vec![i])
        } else {
            shortest_path(&edges, &adj, &e.acquired, &e.held).map(|path| {
                let mut v = vec![i];
                v.extend(path);
                v
            })
        };
        let Some(cycle_edges) = cycle_edges else {
            continue;
        };
        let members: BTreeSet<String> =
            cycle_edges.iter().map(|&k| edges[k].held.clone()).collect();
        if seen.insert(members) {
            cycles.push(Cycle {
                edges: cycle_edges.into_iter().map(|k| edges[k].clone()).collect(),
            });
        }
    }

    Analysis {
        cycles,
        blocked_calls,
    }
}

/// BFS over the edge list: the shortest edge path from lock `from` to lock `to`
/// (deterministic: adjacency in insertion order).
fn shortest_path(
    edges: &[Edge],
    adj: &BTreeMap<&str, Vec<usize>>,
    from: &str,
    to: &str,
) -> Option<Vec<usize>> {
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<(&str, Vec<usize>)> = VecDeque::new();
    visited.insert(from);
    queue.push_back((from, Vec::new()));
    while let Some((node, path)) = queue.pop_front() {
        if node == to {
            return Some(path);
        }
        if path.len() >= 8 {
            continue; // cycles longer than 8 locks are outside scope
        }
        for &ei in adj.get(node).into_iter().flatten() {
            let next = edges[ei].acquired.as_str();
            if visited.insert(next) || next == to {
                let mut p = path.clone();
                p.push(ei);
                queue.push_back((next, p));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{parse, significant};
    use crate::scope::{analyze_functions, line_starts};

    fn file(path: &str, src: &str) -> (String, Vec<FnScope>) {
        let sig = significant(&lex(src));
        let items = parse(src, &sig);
        let fns = analyze_functions(src, &sig, &items, &line_starts(src));
        (path.to_string(), fns)
    }

    #[test]
    fn intra_function_inversion_is_a_cycle() {
        let src = "
            fn ab() { let a = lock_recover(&left); let b = lock_recover(&right); }
            fn ba() { let b = lock_recover(&right); let a = lock_recover(&left); }
        ";
        let analysis = analyze(&[file("crates/core/src/x.rs", src)]);
        assert_eq!(analysis.cycles.len(), 1);
        let cycle = &analysis.cycles[0];
        assert_eq!(cycle.edges.len(), 2);
        let locks: BTreeSet<&str> = cycle.edges.iter().map(|e| e.held.as_str()).collect();
        assert_eq!(locks, BTreeSet::from(["core:left", "core:right"]));
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let src = "
            fn one() { let a = lock_recover(&left); let b = lock_recover(&right); }
            fn two() { let a = lock_recover(&left); let b = lock_recover(&right); }
        ";
        let analysis = analyze(&[file("crates/core/src/x.rs", src)]);
        assert!(analysis.cycles.is_empty());
    }

    #[test]
    fn cross_function_propagation_closes_the_cycle() {
        let src = "
            fn outer() { let a = lock_recover(&left); helper(); }
            fn helper() { let b = lock_recover(&right); }
            fn other() { let b = lock_recover(&right); let a = lock_recover(&left); }
        ";
        let analysis = analyze(&[file("crates/core/src/x.rs", src)]);
        assert_eq!(analysis.cycles.len(), 1);
        assert!(analysis.cycles[0]
            .edges
            .iter()
            .any(|e| e.via.as_deref().is_some_and(|v| v.contains("helper"))));
    }

    #[test]
    fn same_field_name_in_different_crates_does_not_alias() {
        let a = file(
            "crates/core/src/a.rs",
            "fn fa() { let g = lock_recover(&state); let h = lock_recover(&other); }",
        );
        let b = file(
            "crates/oltp/src/b.rs",
            "fn fb() { let h = lock_recover(&other); let g = lock_recover(&state); }",
        );
        let analysis = analyze(&[a, b]);
        // `core:state`/`core:other` vs `oltp:other`/`oltp:state`: no shared nodes.
        assert!(analysis.cycles.is_empty());
    }

    #[test]
    fn call_into_blocking_fn_under_guard_is_reported() {
        let src = "
            fn caller() { let g = lock_recover(&l); slow(); drop(g); }
            fn slow() { let v = rx.recv(); }
        ";
        let analysis = analyze(&[file("crates/core/src/x.rs", src)]);
        assert_eq!(analysis.blocked_calls.len(), 1);
        assert_eq!(analysis.blocked_calls[0].callee, "slow");
        assert!(analysis.blocked_calls[0].what.contains("channel receive"));
    }

    #[test]
    fn ambiguous_names_do_not_propagate() {
        let src = "
            fn caller() { let g = lock_recover(&l); dup(); }
            fn dup() { let v = rx.recv(); }
        ";
        let other = "fn dup() {}";
        let analysis = analyze(&[
            file("crates/core/src/x.rs", src),
            file("crates/net/src/y.rs", other),
        ]);
        assert!(analysis.blocked_calls.is_empty(), "two `dup`s: unresolved");
    }

    #[test]
    fn self_loop_reentry_is_reported() {
        let src = "
            fn outer() { let g = lock_recover(&state); inner_step(); }
            fn inner_step() { let h = lock_recover(&state); }
        ";
        let analysis = analyze(&[file("crates/core/src/x.rs", src)]);
        assert_eq!(analysis.cycles.len(), 1);
        assert_eq!(analysis.cycles[0].edges.len(), 1);
        assert_eq!(analysis.cycles[0].edges[0].held, "core:state");
        assert_eq!(analysis.cycles[0].edges[0].acquired, "core:state");
    }
}
