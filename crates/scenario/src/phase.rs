//! Phased load traces: time-varying open-loop arrival schedules.
//!
//! TailBench's methodology assumes a *stationary* Poisson client; real latency-critical
//! services face bursts, ramps and diurnal waves, and it is exactly during those
//! transients that tails blow up (TailBench++-style dynamic load).  A load trace here
//! is a sequence of [`LoadPhase`]s, each holding a duration and a [`PhaseShape`] that
//! defines an instantaneous rate λ(t) over the phase.  The compiler turns the sequence
//! into explicit arrival timestamps via Lewis–Shedler thinning — an *exact* sampler for
//! non-homogeneous Poisson processes — so every harness mode replays the same
//! open-loop schedule and the DES path stays deterministic under a fixed seed.

use rand::Rng;
use std::time::Duration;
use tailbench_workloads::rng::SuiteRng;

/// The instantaneous-rate profile of one phase.  All rates are in queries per second;
/// `t` below is time since the phase start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseShape {
    /// Stationary Poisson arrivals at `qps` — the classic TailBench client.
    Constant {
        /// Offered rate.
        qps: f64,
    },
    /// Linear ramp from `from_qps` at the phase start to `to_qps` at its end.
    Ramp {
        /// Rate at the phase start.
        from_qps: f64,
        /// Rate at the phase end.
        to_qps: f64,
    },
    /// Square-wave bursting: each period spends `duty` of its length at `burst_qps`
    /// (starting at the period boundary) and the rest at `base_qps`.
    Burst {
        /// Rate outside bursts.
        base_qps: f64,
        /// Rate inside bursts.
        burst_qps: f64,
        /// Burst period.
        period_ns: u64,
        /// Fraction of each period spent bursting, in `[0, 1]`.
        duty: f64,
    },
    /// Diurnal sinusoid: `base_qps * (1 + amplitude * sin(2πt / period))`.
    Diurnal {
        /// Mean rate.
        base_qps: f64,
        /// Relative swing, in `[0, 1)`.
        amplitude: f64,
        /// Wave period.
        period_ns: u64,
    },
}

impl PhaseShape {
    /// A short kind label used in phase names and reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            PhaseShape::Constant { .. } => "constant",
            PhaseShape::Ramp { .. } => "ramp",
            PhaseShape::Burst { .. } => "burst",
            PhaseShape::Diurnal { .. } => "diurnal",
        }
    }

    /// The instantaneous rate at `t_ns` nanoseconds into a phase of `duration_ns`.
    #[must_use]
    pub fn rate_at(&self, t_ns: u64, duration_ns: u64) -> f64 {
        match *self {
            PhaseShape::Constant { qps } => qps,
            PhaseShape::Ramp { from_qps, to_qps } => {
                let frac = if duration_ns == 0 {
                    0.0
                } else {
                    t_ns as f64 / duration_ns as f64
                };
                from_qps + (to_qps - from_qps) * frac
            }
            PhaseShape::Burst {
                base_qps,
                burst_qps,
                period_ns,
                duty,
            } => {
                let pos = t_ns % period_ns.max(1);
                if (pos as f64) < duty * period_ns.max(1) as f64 {
                    burst_qps
                } else {
                    base_qps
                }
            }
            PhaseShape::Diurnal {
                base_qps,
                amplitude,
                period_ns,
            } => {
                let angle = 2.0 * std::f64::consts::PI * (t_ns as f64 / period_ns.max(1) as f64);
                base_qps * (1.0 + amplitude * angle.sin())
            }
        }
    }

    /// The maximum instantaneous rate over the phase (the thinning envelope).
    #[must_use]
    pub fn peak_qps(&self) -> f64 {
        match *self {
            PhaseShape::Constant { qps } => qps,
            PhaseShape::Ramp { from_qps, to_qps } => from_qps.max(to_qps),
            PhaseShape::Burst {
                base_qps,
                burst_qps,
                ..
            } => base_qps.max(burst_qps),
            PhaseShape::Diurnal {
                base_qps,
                amplitude,
                ..
            } => base_qps * (1.0 + amplitude.abs()),
        }
    }

    /// The exact mean rate over a phase of `duration_ns` (the time integral of λ
    /// divided by the duration) — what the phase-trace compiler's empirical rate
    /// converges to, and the property the compiler proptest pins.
    #[must_use]
    pub fn mean_qps(&self, duration_ns: u64) -> f64 {
        match *self {
            PhaseShape::Constant { qps } => qps,
            PhaseShape::Ramp { from_qps, to_qps } => 0.5 * (from_qps + to_qps),
            PhaseShape::Burst {
                base_qps,
                burst_qps,
                period_ns,
                duty,
            } => {
                let period = period_ns.max(1) as f64;
                let duration = duration_ns.max(1) as f64;
                let burst_len = duty * period;
                let full = (duration / period).floor();
                let rem = duration - full * period;
                let burst_time = full * burst_len + rem.min(burst_len);
                let base_time = duration - burst_time;
                (burst_qps * burst_time + base_qps * base_time) / duration
            }
            PhaseShape::Diurnal {
                base_qps,
                amplitude,
                period_ns,
            } => {
                // ∫ base(1 + a·sin(2πt/P)) dt over [0, D]
                //   = base·D + base·a·(P/2π)(1 − cos(2πD/P)).
                let period = period_ns.max(1) as f64;
                let duration = duration_ns.max(1) as f64;
                let angle = 2.0 * std::f64::consts::PI * duration / period;
                base_qps
                    + base_qps
                        * amplitude
                        * (period / (2.0 * std::f64::consts::PI))
                        * (1.0 - angle.cos())
                        / duration
            }
        }
    }
}

/// One segment of a load trace: a shape held for a duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// Phase length in nanoseconds.
    pub duration_ns: u64,
    /// Rate profile over the phase.
    pub shape: PhaseShape,
}

impl LoadPhase {
    /// A stationary phase at `qps` for `duration`.
    #[must_use]
    pub fn constant(qps: f64, duration: Duration) -> Self {
        LoadPhase {
            duration_ns: duration.as_nanos() as u64,
            shape: PhaseShape::Constant { qps },
        }
    }

    /// A linear ramp from `from_qps` to `to_qps` over `duration`.
    #[must_use]
    pub fn ramp(from_qps: f64, to_qps: f64, duration: Duration) -> Self {
        LoadPhase {
            duration_ns: duration.as_nanos() as u64,
            shape: PhaseShape::Ramp { from_qps, to_qps },
        }
    }

    /// A square-wave burst phase.
    #[must_use]
    pub fn burst(
        base_qps: f64,
        burst_qps: f64,
        period: Duration,
        duty: f64,
        duration: Duration,
    ) -> Self {
        LoadPhase {
            duration_ns: duration.as_nanos() as u64,
            shape: PhaseShape::Burst {
                base_qps,
                burst_qps,
                period_ns: period.as_nanos() as u64,
                duty: duty.clamp(0.0, 1.0),
            },
        }
    }

    /// A diurnal-sinusoid phase.
    #[must_use]
    pub fn diurnal(base_qps: f64, amplitude: f64, period: Duration, duration: Duration) -> Self {
        LoadPhase {
            duration_ns: duration.as_nanos() as u64,
            shape: PhaseShape::Diurnal {
                base_qps,
                amplitude: amplitude.clamp(0.0, 0.999),
                period_ns: period.as_nanos() as u64,
            },
        }
    }

    /// The phase's exact mean rate.
    #[must_use]
    pub fn mean_qps(&self) -> f64 {
        self.shape.mean_qps(self.duration_ns)
    }

    /// Expected number of arrivals in the phase.
    #[must_use]
    pub fn expected_arrivals(&self) -> f64 {
        self.mean_qps() * self.duration_ns as f64 / 1e9
    }
}

/// Compiles a phase sequence into `(arrival timestamps, phase index per arrival)`.
///
/// Each phase is sampled by Lewis–Shedler thinning against its peak rate: candidate
/// gaps are exponential at the peak, and a candidate at time `t` is kept with
/// probability `λ(t) / peak`.  This is an exact non-homogeneous Poisson sampler, so a
/// constant phase degenerates to the classic TailBench Poisson schedule and every
/// phase's empirical rate converges on [`PhaseShape::mean_qps`].  Timestamps are
/// non-decreasing across phase boundaries by construction (time never rewinds), and
/// the whole compilation draws only from `rng`, keeping traces reproducible.
#[must_use]
pub fn compile_phases(phases: &[LoadPhase], rng: &mut SuiteRng) -> (Vec<u64>, Vec<u16>) {
    let mut times = Vec::new();
    let mut phase_of = Vec::new();
    let mut phase_start = 0.0f64;
    for (index, phase) in phases.iter().enumerate() {
        let peak = phase.shape.peak_qps();
        let end = phase_start + phase.duration_ns as f64;
        if peak > 0.0 && phase.duration_ns > 0 {
            let peak_per_ns = peak / 1e9;
            let mut t = phase_start;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / peak_per_ns;
                if t >= end {
                    break;
                }
                let keep: f64 = rng.gen_range(0.0..1.0);
                let rate = phase
                    .shape
                    .rate_at((t - phase_start) as u64, phase.duration_ns);
                if keep * peak < rate {
                    times.push(t as u64);
                    phase_of.push(index.min(u16::MAX as usize) as u16);
                }
            }
        }
        phase_start = end;
    }
    (times, phase_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailbench_workloads::rng::seeded_rng;

    #[test]
    fn constant_phase_matches_poisson_rate() {
        let phases = [LoadPhase::constant(10_000.0, Duration::from_secs(2))];
        let mut rng = seeded_rng(1, 0);
        let (times, phase_of) = compile_phases(&phases, &mut rng);
        assert_eq!(times.len(), phase_of.len());
        let rate = times.len() as f64 / 2.0;
        assert!((rate - 10_000.0).abs() / 10_000.0 < 0.05, "rate = {rate}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn burst_phase_concentrates_arrivals_in_the_duty_window() {
        // 100 ms periods, 20% duty, 10x burst: the burst windows hold the majority of
        // arrivals even though they cover a fifth of the time.
        let phases = [LoadPhase::burst(
            1_000.0,
            10_000.0,
            Duration::from_millis(100),
            0.2,
            Duration::from_secs(2),
        )];
        let mut rng = seeded_rng(2, 0);
        let (times, _) = compile_phases(&phases, &mut rng);
        let in_burst = times
            .iter()
            .filter(|&&t| (t % 100_000_000) < 20_000_000)
            .count();
        assert!(
            in_burst as f64 > 0.6 * times.len() as f64,
            "{in_burst} of {} arrivals in burst windows",
            times.len()
        );
        let expected = phases[0].expected_arrivals();
        assert!((times.len() as f64 - expected).abs() / expected < 0.1);
    }

    #[test]
    fn ramp_phase_back_loads_arrivals() {
        let phases = [LoadPhase::ramp(100.0, 10_000.0, Duration::from_secs(2))];
        let mut rng = seeded_rng(3, 0);
        let (times, _) = compile_phases(&phases, &mut rng);
        let first_half = times.iter().filter(|&&t| t < 1_000_000_000).count();
        let second_half = times.len() - first_half;
        assert!(
            second_half > 2 * first_half,
            "ramp must back-load: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn phase_boundaries_tag_and_order_correctly() {
        let phases = [
            LoadPhase::constant(5_000.0, Duration::from_millis(500)),
            LoadPhase::constant(20_000.0, Duration::from_millis(500)),
        ];
        let mut rng = seeded_rng(4, 0);
        let (times, phase_of) = compile_phases(&phases, &mut rng);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        for (&t, &p) in times.iter().zip(&phase_of) {
            let (lo, hi) = if p == 0 {
                (0, 500_000_000)
            } else {
                (500_000_000, 1_000_000_000)
            };
            assert!(t >= lo && t < hi, "arrival {t} tagged phase {p}");
        }
        // The second phase offers 4x the rate.
        let p0 = phase_of.iter().filter(|&&p| p == 0).count();
        let p1 = phase_of.len() - p0;
        assert!(p1 > 3 * p0, "{p0} vs {p1}");
    }

    #[test]
    fn diurnal_mean_is_exact_over_whole_and_partial_periods() {
        let shape = PhaseShape::Diurnal {
            base_qps: 1_000.0,
            amplitude: 0.5,
            period_ns: 1_000_000_000,
        };
        // Whole periods: the sinusoid averages out.
        assert!((shape.mean_qps(2_000_000_000) - 1_000.0).abs() < 1e-6);
        // Half a period covers only the positive lobe: mean = base(1 + 2a/π).
        let expected = 1_000.0 * (1.0 + 2.0 * 0.5 / std::f64::consts::PI);
        assert!((shape.mean_qps(500_000_000) - expected).abs() < 1e-6);
    }

    #[test]
    fn empty_and_zero_rate_phases_produce_no_arrivals() {
        let mut rng = seeded_rng(5, 0);
        let (times, _) = compile_phases(&[], &mut rng);
        assert!(times.is_empty());
        let (times, _) = compile_phases(
            &[LoadPhase::constant(0.0, Duration::from_secs(1))],
            &mut rng,
        );
        assert!(times.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tailbench_workloads::rng::seeded_rng;

    fn shape_strategy() -> impl Strategy<Value = PhaseShape> {
        prop_oneof![
            (2_000.0f64..20_000.0).prop_map(|qps| PhaseShape::Constant { qps }),
            ((2_000.0f64..20_000.0), (2_000.0f64..20_000.0))
                .prop_map(|(from_qps, to_qps)| PhaseShape::Ramp { from_qps, to_qps }),
            (
                (2_000.0f64..10_000.0),
                (10_000.0f64..40_000.0),
                (10_000_000u64..200_000_000),
                (0.05f64..0.95),
            )
                .prop_map(|(base_qps, burst_qps, period_ns, duty)| PhaseShape::Burst {
                    base_qps,
                    burst_qps,
                    period_ns,
                    duty,
                }),
            (
                (2_000.0f64..20_000.0),
                (0.0f64..0.9),
                (50_000_000u64..500_000_000),
            )
                .prop_map(|(base_qps, amplitude, period_ns)| PhaseShape::Diurnal {
                    base_qps,
                    amplitude,
                    period_ns,
                }),
        ]
    }

    proptest! {
        /// The satellite guard for the phase-trace compiler: across random multi-phase
        /// traces — including traces *offset from the epoch* by an idle zero-rate
        /// lead-in phase — (a) arrival timestamps are non-decreasing across phase
        /// boundaries and stay inside their tagged phase's window, (b) each phase's
        /// empirical rate is within 5% of the shape's exact mean rate (thinning is an
        /// exact sampler; the tolerance covers Poisson counting noise at these sizes),
        /// and (c) `LoadTrace::from_times` reports the offered load over the *arrival
        /// span*, so the idle lead-in does not dilute `mean_qps` (the offered-load
        /// accounting bug this suite regression-guards).
        #[test]
        fn compiled_traces_are_ordered_and_rate_faithful(
            shapes in prop::collection::vec(shape_strategy(), 1..4),
            offset_ns in prop_oneof![0u64..1, 500_000_000u64..5_000_000_000],
            seed in 0u64..1_000,
        ) {
            let mut phases: Vec<LoadPhase> = Vec::new();
            if offset_ns > 0 {
                // An idle lead-in: zero arrivals, so the first real arrival lands far
                // from the epoch.
                phases.push(LoadPhase {
                    duration_ns: offset_ns,
                    shape: PhaseShape::Constant { qps: 0.0 },
                });
            }
            phases.extend(
                shapes
                    .into_iter()
                    .map(|shape| LoadPhase { duration_ns: 2_000_000_000, shape }),
            );
            let mut rng = seeded_rng(seed, 9);
            let (times, phase_of) = compile_phases(&phases, &mut rng);
            prop_assert_eq!(times.len(), phase_of.len());
            prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));

            let mut counts = vec![0u64; phases.len()];
            let mut start = 0u64;
            let mut bounds = Vec::new();
            for phase in &phases {
                bounds.push((start, start + phase.duration_ns));
                start += phase.duration_ns;
            }
            for (&t, &p) in times.iter().zip(&phase_of) {
                let (lo, hi) = bounds[p as usize];
                prop_assert!(t >= lo && t < hi, "arrival {} outside phase {} [{}, {})", t, p, lo, hi);
                counts[p as usize] += 1;
            }
            let mut expected_total = 0.0f64;
            for (i, phase) in phases.iter().enumerate() {
                let expected = phase.expected_arrivals();
                expected_total += expected;
                let got = counts[i] as f64;
                if expected == 0.0 {
                    prop_assert!(counts[i] == 0, "a zero-rate phase must stay empty");
                    continue;
                }
                prop_assert!(
                    (got - expected).abs() / expected < 0.05,
                    "phase {} ({}): {} arrivals vs {:.0} expected",
                    i, phase.shape.kind(), got, expected
                );
            }

            // The offered-load accounting must hold for offset traces: mean_qps is the
            // rate over the arrival span, not diluted by the idle lead-in.  The active
            // span is (total - offset); expected_total arrivals over it.
            let trace = tailbench_core::traffic::LoadTrace::from_times(times);
            let active_span_s =
                (bounds.last().unwrap().1 - offset_ns) as f64 / 1e9;
            let expected_qps = expected_total / active_span_s;
            prop_assert!(
                (trace.mean_qps - expected_qps).abs() / expected_qps < 0.05,
                "trace mean_qps {} vs expected {} (offset {} ns)",
                trace.mean_qps, expected_qps, offset_ns
            );
        }
    }
}
