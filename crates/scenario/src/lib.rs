//! The TailBench-RS scenario engine.
//!
//! A [`Scenario`] is a declarative description of one dynamic measurement: a sequence
//! of [`LoadPhase`]s (constant, ramp, square-wave burst, diurnal sinusoid) compiled
//! into an explicit open-loop arrival trace, a population of [`ClientClass`]es that
//! split the offered rate and tag every request for per-class reporting, a
//! deterministic [`InterferencePlan`] of fault windows (slow shard, full pause,
//! per-request jitter), and an optional [`HedgePolicy`] for cluster runs.  Compiled
//! scenarios run unchanged in every harness mode — integrated, loopback, networked and
//! discrete-event simulated — and the DES path is bit-for-bit deterministic under a
//! fixed seed, so burst-phase tails and hedging wins can be pinned exactly.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use tailbench_core::app::{EchoApp, InstructionRateModel, ServerApp};
//! use tailbench_core::config::HarnessMode;
//! use tailbench_scenario::{ClientClass, LoadPhase, Scenario};
//!
//! // 0.2 s steady at 2k QPS, then 0.2 s of 4x square-wave bursts, 70/30 split between
//! // an interactive and a batch tenant.
//! let scenario = Scenario::new(
//!     "burst-demo",
//!     vec![
//!         LoadPhase::constant(2_000.0, Duration::from_millis(200)),
//!         LoadPhase::burst(2_000.0, 8_000.0, Duration::from_millis(50), 0.5,
//!                          Duration::from_millis(200)),
//!     ],
//! )
//! .with_classes(vec![
//!     ClientClass::new("interactive", 0.7),
//!     ClientClass::new("batch", 0.3),
//! ]);
//!
//! let app: Arc<dyn ServerApp> = Arc::new(EchoApp { spin_iters: 50_000 });
//! let model = InstructionRateModel { ns_per_instruction: 1.0 };
//! let factories = vec![
//!     Box::new(|| b"interactive".to_vec()) as Box<dyn tailbench_core::RequestFactory>,
//!     Box::new(|| b"batch".to_vec()) as Box<dyn tailbench_core::RequestFactory>,
//! ];
//! let report = tailbench_scenario::execute_scenario(
//!     &app, factories, &scenario, HarnessMode::Simulated, 1, 42, Some(&model),
//! )?;
//! assert_eq!(report.per_class.len(), 2);
//! assert_eq!(report.per_phase.len(), 2);
//! # Ok::<(), tailbench_core::HarnessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod phase;

pub use phase::{compile_phases, LoadPhase, PhaseShape};

use rand::Rng;
use std::sync::Arc;
use std::time::Duration;
use tailbench_core::app::{CostModel, RequestFactory, ServerApp};
use tailbench_core::collector::RequestTags;
use tailbench_core::config::{BenchmarkConfig, ClusterConfig, HarnessMode, HedgePolicy};
use tailbench_core::interference::InterferencePlan;
use tailbench_core::queue::AdmissionPolicy;
use tailbench_core::report::{ClusterReport, RunReport};
use tailbench_core::runner;
use tailbench_core::traffic::{LoadMode, LoadTrace};
use tailbench_core::HarnessError;
use tailbench_workloads::rng::seeded_rng;

/// One client class (tenant) of a scenario: a name and its share of the offered rate.
/// The request payloads of a class come from the per-class [`RequestFactory`] passed to
/// the run functions, so an interactive tenant can issue point reads while a batch
/// tenant issues scans against the same server.
#[derive(Debug, Clone)]
pub struct ClientClass {
    /// Class name, used in per-class report rows.
    pub name: String,
    /// Relative share of the offered rate (normalized over all classes).
    pub weight: f64,
}

impl ClientClass {
    /// Creates a class with the given rate share.
    #[must_use]
    pub fn new(name: impl Into<String>, weight: f64) -> Self {
        ClientClass {
            name: name.into(),
            weight: weight.max(0.0),
        }
    }
}

/// A declarative scenario: phased load, client classes, interference, hedging.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports and logs).
    pub name: String,
    /// The load phases, played back to back.
    pub phases: Vec<LoadPhase>,
    /// Client classes; empty means one implicit class `"all"`.
    pub classes: Vec<ClientClass>,
    /// Deterministic fault schedule (empty = none).
    pub interference: InterferencePlan,
    /// Hedged-request policy for cluster runs (`None` = no hedging).
    pub hedge: Option<HedgePolicy>,
    /// Fraction of the trace treated as warmup and excluded from statistics.
    pub warmup_fraction: f64,
    /// Request-queue admission policy for the servers (default: unbounded).
    pub admission: AdmissionPolicy,
}

impl Scenario {
    /// Creates a scenario from its phases, with one implicit client class, no
    /// interference, no hedging and 10% warmup.
    #[must_use]
    pub fn new(name: impl Into<String>, phases: Vec<LoadPhase>) -> Self {
        Scenario {
            name: name.into(),
            phases,
            classes: Vec::new(),
            interference: InterferencePlan::none(),
            hedge: None,
            warmup_fraction: 0.1,
            admission: AdmissionPolicy::unbounded(),
        }
    }

    /// Sets the client classes.
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<ClientClass>) -> Self {
        self.classes = classes;
        self
    }

    /// Sets the interference plan.
    #[must_use]
    pub fn with_interference(mut self, interference: InterferencePlan) -> Self {
        self.interference = interference;
        self
    }

    /// Sets the hedged-request policy (effective in cluster runs with replication ≥ 2).
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Sets the warmup fraction.
    #[must_use]
    pub fn with_warmup_fraction(mut self, fraction: f64) -> Self {
        self.warmup_fraction = fraction.clamp(0.0, 0.9);
        self
    }

    /// Sets the servers' request-queue admission policy.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Number of client classes (at least one: the implicit class).
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len().max(1)
    }

    /// Total trace span (sum of phase durations).
    #[must_use]
    pub fn span(&self) -> Duration {
        Duration::from_nanos(self.phases.iter().map(|p| p.duration_ns).sum())
    }

    /// Compiles the scenario for one seed: draws the arrival trace (thinning) and the
    /// per-request class assignment, and builds the tag table.  Same seed, same
    /// compiled scenario, on any host.
    #[must_use]
    pub fn compile(&self, seed: u64) -> CompiledScenario {
        let mut trace_rng = seeded_rng(seed, 21);
        let (times, phase_of) = compile_phases(&self.phases, &mut trace_rng);

        let class_names: Vec<String> = if self.classes.is_empty() {
            vec!["all".to_string()]
        } else {
            self.classes.iter().map(|c| c.name.clone()).collect()
        };
        let weights: Vec<f64> = if self.classes.is_empty() {
            vec![1.0]
        } else {
            self.classes.iter().map(|c| c.weight).collect()
        };
        let total_weight: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);
        let mut class_rng = seeded_rng(seed, 22);
        let class_of: Vec<u16> = times
            .iter()
            .map(|_| {
                let draw: f64 = class_rng.gen_range(0.0..1.0) * total_weight;
                let mut acc = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    acc += w;
                    if draw < acc {
                        return i as u16;
                    }
                }
                (weights.len() - 1) as u16
            })
            .collect();

        let phase_names: Vec<String> = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{i}:{}", p.shape.kind()))
            .collect();
        let warmup = (times.len() as f64 * self.warmup_fraction).round() as usize;
        let tags = Arc::new(RequestTags::new(
            class_names,
            phase_names,
            class_of.clone(),
            phase_of,
        ));
        CompiledScenario {
            times,
            class_of,
            tags,
            warmup,
        }
    }

    /// Builds the [`BenchmarkConfig`] that plays `compiled` back under `mode`.
    #[must_use]
    pub fn benchmark_config(
        &self,
        compiled: &CompiledScenario,
        mode: HarnessMode,
        threads: usize,
        seed: u64,
    ) -> BenchmarkConfig {
        let measured = compiled.times.len().saturating_sub(compiled.warmup);
        let span = self.span();
        BenchmarkConfig::new(1.0, measured)
            .with_load(LoadMode::trace(LoadTrace::from_times(
                compiled.times.clone(),
            )))
            .with_mode(mode)
            .with_threads(threads)
            .with_warmup(compiled.warmup)
            .with_seed(seed)
            .with_interference(self.interference.clone())
            .with_tags(Arc::clone(&compiled.tags))
            .with_admission(self.admission)
            // Real-time runs need headroom above the trace span (pacing can only ever
            // fall behind, never ahead).
            .with_max_duration(span * 2 + Duration::from_secs(60))
    }
}

/// A scenario compiled for one seed.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Arrival timestamps, ns since the run epoch, non-decreasing.
    pub times: Vec<u64>,
    /// Class of each request, indexed by request id.
    pub class_of: Vec<u16>,
    /// The tag table shared with the collectors.
    pub tags: Arc<RequestTags>,
    /// Number of leading requests treated as warmup.
    pub warmup: usize,
}

/// Multiplexes per-class request factories into the single id-ordered payload stream
/// the traffic shaper consumes: request `i` draws its payload from the factory of
/// `class_of[i]`.
struct ClassMux {
    factories: Vec<Box<dyn RequestFactory>>,
    class_of: Vec<u16>,
    next: usize,
}

impl RequestFactory for ClassMux {
    fn next_request(&mut self) -> Vec<u8> {
        let class = self
            .class_of
            .get(self.next)
            .copied()
            .unwrap_or(0)
            .min(self.factories.len().saturating_sub(1) as u16);
        self.next += 1;
        match self.factories.get_mut(class as usize) {
            Some(factory) => factory.next_request(),
            None => Vec::new(),
        }
    }
}

fn validate_factories(
    scenario: &Scenario,
    class_factories: &[Box<dyn RequestFactory>],
) -> Result<(), HarnessError> {
    if class_factories.len() == scenario.class_count() {
        Ok(())
    } else {
        Err(HarnessError::Config(format!(
            "scenario '{}' has {} client classes but {} factories were provided",
            scenario.name,
            scenario.class_count(),
            class_factories.len()
        )))
    }
}

/// Runs a scenario against a single server in any harness mode — the scenario
/// counterpart of `runner::execute`.
///
/// `class_factories` holds one payload factory per client class (one factory for
/// class-less scenarios).  Simulated mode requires `cost_model`; real-time modes ignore
/// it.  The unified `tailbench_experiment::Experiment` API calls this when an
/// experiment spec selects a scenario load.
///
/// # Errors
///
/// Returns [`HarnessError::Config`] when the factory count does not match the class
/// count or simulated mode lacks a cost model, and [`HarnessError::Io`] if a TCP
/// configuration fails to set up its sockets.
pub fn execute_scenario(
    app: &Arc<dyn ServerApp>,
    class_factories: Vec<Box<dyn RequestFactory>>,
    scenario: &Scenario,
    mode: HarnessMode,
    threads: usize,
    seed: u64,
    cost_model: Option<&dyn CostModel>,
) -> Result<RunReport, HarnessError> {
    validate_factories(scenario, &class_factories)?;
    let compiled = scenario.compile(seed);
    let config = scenario.benchmark_config(&compiled, mode, threads, seed);
    let mut mux = ClassMux {
        factories: class_factories,
        class_of: compiled.class_of,
        next: 0,
    };
    let report = runner::execute(app, &mut mux, &config, cost_model)?;
    warn_on_pacing_skew(&scenario.name, &report);
    Ok(report)
}

/// A scenario's bursts only mean anything if the harness actually issued them on
/// schedule.  Real-time runs whose p99 pacing error exceeds this threshold get a
/// stderr warning instead of silently reporting skewed burst tails.
pub const PACING_WARN_THRESHOLD_NS: u64 = 1_000_000;

fn warn_on_pacing_skew(name: &str, report: &RunReport) {
    if let Some(warning) = report.pacing_warning(PACING_WARN_THRESHOLD_NS) {
        eprintln!("scenario '{name}': {warning}");
    }
}

/// Runs a scenario against a cluster in any harness mode — the scenario counterpart of
/// `runner::execute_cluster`.
///
/// The scenario's hedge policy (if any) is applied on top of `cluster`; everything else
/// matches [`execute_scenario`].
///
/// # Errors
///
/// As [`execute_scenario`], plus the cluster-shape errors of
/// [`runner::execute_cluster`](tailbench_core::runner::execute_cluster).
#[allow(clippy::too_many_arguments)]
pub fn execute_cluster_scenario(
    apps: &[Arc<dyn ServerApp>],
    class_factories: Vec<Box<dyn RequestFactory>>,
    scenario: &Scenario,
    cluster: &ClusterConfig,
    mode: HarnessMode,
    threads: usize,
    seed: u64,
    cost_model: Option<&dyn CostModel>,
) -> Result<ClusterReport, HarnessError> {
    validate_factories(scenario, &class_factories)?;
    let compiled = scenario.compile(seed);
    let config = scenario.benchmark_config(&compiled, mode, threads, seed);
    let mut mux = ClassMux {
        factories: class_factories,
        class_of: compiled.class_of,
        next: 0,
    };
    let cluster = match scenario.hedge {
        Some(policy) => cluster.clone().with_hedge(policy),
        None => cluster.clone(),
    };
    let report = runner::execute_cluster(apps, &mut mux, &config, &cluster, cost_model)?;
    warn_on_pacing_skew(&scenario.name, &report.cluster);
    Ok(report)
}

/// Runs a scenario against a single server in any harness mode.
///
/// # Errors
///
/// Same as [`execute_scenario`].
#[deprecated(
    since = "0.2.0",
    note = "use execute_scenario, or the unified tailbench_experiment::Experiment API \
            with a scenario load"
)]
pub fn run_scenario(
    app: &Arc<dyn ServerApp>,
    class_factories: Vec<Box<dyn RequestFactory>>,
    scenario: &Scenario,
    mode: HarnessMode,
    threads: usize,
    seed: u64,
    cost_model: Option<&dyn CostModel>,
) -> Result<RunReport, HarnessError> {
    execute_scenario(
        app,
        class_factories,
        scenario,
        mode,
        threads,
        seed,
        cost_model,
    )
}

/// Runs a scenario against a cluster in any harness mode.
///
/// # Errors
///
/// Same as [`execute_cluster_scenario`].
#[deprecated(
    since = "0.2.0",
    note = "use execute_cluster_scenario, or the unified tailbench_experiment::Experiment \
            API with a scenario load and a topology"
)]
#[allow(clippy::too_many_arguments)]
pub fn run_cluster_scenario(
    apps: &[Arc<dyn ServerApp>],
    class_factories: Vec<Box<dyn RequestFactory>>,
    scenario: &Scenario,
    cluster: &ClusterConfig,
    mode: HarnessMode,
    threads: usize,
    seed: u64,
    cost_model: Option<&dyn CostModel>,
) -> Result<ClusterReport, HarnessError> {
    execute_cluster_scenario(
        apps,
        class_factories,
        scenario,
        cluster,
        mode,
        threads,
        seed,
        cost_model,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailbench_core::app::{EchoApp, InstructionRateModel};

    fn burst_scenario() -> Scenario {
        Scenario::new(
            "test-burst",
            vec![
                LoadPhase::constant(2_000.0, Duration::from_millis(400)),
                LoadPhase::burst(
                    2_000.0,
                    12_000.0,
                    Duration::from_millis(50),
                    0.5,
                    Duration::from_millis(400),
                ),
                LoadPhase::constant(2_000.0, Duration::from_millis(200)),
            ],
        )
        .with_classes(vec![
            ClientClass::new("interactive", 0.8),
            ClientClass::new("batch", 0.2),
        ])
    }

    #[test]
    fn compile_is_deterministic_and_consistent() {
        let scenario = burst_scenario();
        let a = scenario.compile(7);
        let b = scenario.compile(7);
        assert_eq!(a.times, b.times);
        assert_eq!(a.class_of, b.class_of);
        assert_eq!(a.times.len(), a.class_of.len());
        assert!(a.warmup > 0 && a.warmup < a.times.len());
        // Class shares roughly follow the weights.
        let batch = a.class_of.iter().filter(|&&c| c == 1).count() as f64;
        let share = batch / a.class_of.len() as f64;
        assert!((share - 0.2).abs() < 0.05, "batch share = {share}");
        // A different seed draws a different trace.
        let c = scenario.compile(8);
        assert_ne!(a.times, c.times);
    }

    #[test]
    fn class_count_and_factory_validation() {
        let scenario = burst_scenario();
        let app: Arc<dyn ServerApp> = Arc::new(EchoApp::default());
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let one_factory: Vec<Box<dyn RequestFactory>> = vec![Box::new(|| vec![0u8])];
        let err = execute_scenario(
            &app,
            one_factory,
            &scenario,
            HarnessMode::Simulated,
            1,
            1,
            Some(&model),
        )
        .unwrap_err();
        assert!(matches!(err, HarnessError::Config(_)));
    }

    #[test]
    fn simulated_scenario_reports_classes_and_phases() {
        let scenario = burst_scenario();
        let app: Arc<dyn ServerApp> = Arc::new(EchoApp {
            spin_iters: 100_000,
        });
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let factories: Vec<Box<dyn RequestFactory>> = vec![
            Box::new(|| b"i".to_vec()),
            Box::new(|| b"batchbatch".to_vec()),
        ];
        let report = execute_scenario(
            &app,
            factories,
            &scenario,
            HarnessMode::Simulated,
            1,
            42,
            Some(&model),
        )
        .unwrap();
        assert_eq!(report.per_class.len(), 2);
        assert_eq!(report.per_class[0].name, "interactive");
        assert_eq!(report.per_phase.len(), 3);
        assert_eq!(report.per_phase[1].name, "1:burst");
        assert!(report.requests > 0);
        // The burst phase overdrives the ~10k QPS server, so its p99 must sit far above
        // the steady phase's.
        let steady = report.per_phase[0].sojourn.p99_ns;
        let burst = report.per_phase[1].sojourn.p99_ns;
        assert!(
            burst > 2 * steady,
            "burst p99 {burst} vs steady p99 {steady}"
        );
        // The run is deterministic end to end.
        let factories: Vec<Box<dyn RequestFactory>> = vec![
            Box::new(|| b"i".to_vec()),
            Box::new(|| b"batchbatch".to_vec()),
        ];
        let again = execute_scenario(
            &app,
            factories,
            &scenario,
            HarnessMode::Simulated,
            1,
            42,
            Some(&model),
        )
        .unwrap();
        assert_eq!(again.sojourn.p99_ns, report.sojourn.p99_ns);
        assert_eq!(
            again.per_class[1].sojourn.p95_ns,
            report.per_class[1].sojourn.p95_ns
        );
    }

    #[test]
    fn integrated_scenario_runs_wall_clock() {
        // A short, light scenario that completes quickly in real time.
        let scenario = Scenario::new(
            "wall-clock",
            vec![
                LoadPhase::constant(2_000.0, Duration::from_millis(100)),
                LoadPhase::ramp(2_000.0, 4_000.0, Duration::from_millis(100)),
            ],
        );
        let app: Arc<dyn ServerApp> = Arc::new(EchoApp::with_service_us(5));
        let factories: Vec<Box<dyn RequestFactory>> = vec![Box::new(|| b"w".to_vec())];
        let report = execute_scenario(
            &app,
            factories,
            &scenario,
            HarnessMode::Integrated,
            1,
            3,
            None,
        )
        .unwrap();
        assert!(report.requests > 200, "measured {}", report.requests);
        assert_eq!(report.per_phase.len(), 2);
        assert_eq!(report.per_class.len(), 1);
        assert_eq!(report.per_class[0].name, "all");
    }
}
