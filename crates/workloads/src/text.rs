//! Synthetic text corpora and search queries.
//!
//! The paper drives xapian with an index built from an English Wikipedia dump and queries
//! whose term popularity is Zipfian.  We cannot ship Wikipedia, so this module generates a
//! corpus with the same statistical structure: a vocabulary whose word frequencies follow
//! Zipf's law (as natural language does), documents of log-normally distributed length,
//! and queries whose terms are drawn from the same Zipfian popularity distribution.  The
//! resulting postings-list length distribution — which is what determines xapian's
//! service-time distribution — is therefore shaped like the real workload's.

use crate::rng::SuiteRng;
use crate::zipf::Zipfian;
use rand::Rng;

/// Configuration for the synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub documents: usize,
    /// Vocabulary size (distinct terms).
    pub vocabulary: usize,
    /// Mean document length in terms.
    pub mean_doc_len: usize,
    /// Zipf skew of term popularity (natural language is close to 1; we use 0.9).
    pub term_skew: f64,
    /// Seed for corpus generation.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            documents: 20_000,
            vocabulary: 40_000,
            mean_doc_len: 180,
            term_skew: 0.9,
            seed: 0xC0FFEE,
        }
    }
}

impl CorpusConfig {
    /// A small configuration suitable for unit tests.
    #[must_use]
    pub fn small() -> Self {
        CorpusConfig {
            documents: 300,
            vocabulary: 2_000,
            mean_doc_len: 60,
            term_skew: 0.9,
            seed: 7,
        }
    }
}

/// A generated document: an identifier plus its term sequence.
#[derive(Debug, Clone)]
pub struct Document {
    /// Document identifier, dense from 0.
    pub id: u32,
    /// Term identifiers making up the document body.
    pub terms: Vec<u32>,
}

/// A synthetic corpus plus the machinery to draw realistic queries from it.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    config: CorpusConfig,
    documents: Vec<Document>,
    term_popularity: Zipfian,
}

impl SyntheticCorpus {
    /// Generates a corpus according to `config`.
    #[must_use]
    pub fn generate(config: CorpusConfig) -> Self {
        let mut rng = crate::rng::seeded_rng(config.seed, 0);
        let term_dist = Zipfian::new(config.vocabulary as u64, config.term_skew);
        let mut documents = Vec::with_capacity(config.documents);
        for id in 0..config.documents {
            // Log-normal-ish length: mean_doc_len scaled by exp of a small gaussian,
            // approximated from uniforms to avoid a heavyweight distribution dependency.
            let g: f64 = (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() / 6.0 - 0.5; // ~N(0, 0.08)
            let len = ((config.mean_doc_len as f64) * (1.0 + 1.6 * g)).max(8.0) as usize;
            let terms = (0..len)
                .map(|_| term_dist.sample(&mut rng) as u32)
                .collect();
            documents.push(Document {
                id: id as u32,
                terms,
            });
        }
        SyntheticCorpus {
            term_popularity: term_dist,
            config,
            documents,
        }
    }

    /// The documents of the corpus.
    #[must_use]
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// The generation configuration.
    #[must_use]
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Total number of term occurrences across all documents.
    #[must_use]
    pub fn total_terms(&self) -> usize {
        self.documents.iter().map(|d| d.terms.len()).sum()
    }
}

/// Generates search queries whose term popularity follows the corpus' Zipfian
/// distribution (paper: "Query terms are chosen randomly, following a Zipfian
/// distribution").
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    term_popularity: Zipfian,
    min_terms: usize,
    max_terms: usize,
}

impl QueryGenerator {
    /// Creates a query generator matching the given corpus, producing queries of
    /// `min_terms..=max_terms` terms.
    ///
    /// # Panics
    ///
    /// Panics if `min_terms == 0` or `min_terms > max_terms`.
    #[must_use]
    pub fn new(corpus: &SyntheticCorpus, min_terms: usize, max_terms: usize) -> Self {
        assert!(min_terms >= 1 && min_terms <= max_terms);
        QueryGenerator {
            term_popularity: corpus.term_popularity.clone(),
            min_terms,
            max_terms,
        }
    }

    /// Web-search-like defaults (1–4 terms per query).
    #[must_use]
    pub fn web_search(corpus: &SyntheticCorpus) -> Self {
        Self::new(corpus, 1, 4)
    }

    /// Draws one query as a list of term identifiers.
    pub fn next_query(&self, rng: &mut SuiteRng) -> Vec<u32> {
        let n = rng.gen_range(self.min_terms..=self.max_terms);
        (0..n)
            .map(|_| self.term_popularity.sample(rng) as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn corpus_has_requested_shape() {
        let cfg = CorpusConfig::small();
        let corpus = SyntheticCorpus::generate(cfg.clone());
        assert_eq!(corpus.documents().len(), cfg.documents);
        assert!(corpus.total_terms() > cfg.documents * 8);
        for d in corpus.documents() {
            assert!(!d.terms.is_empty());
            assert!(d.terms.iter().all(|&t| (t as usize) < cfg.vocabulary));
        }
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let a = SyntheticCorpus::generate(CorpusConfig::small());
        let b = SyntheticCorpus::generate(CorpusConfig::small());
        assert_eq!(a.documents().len(), b.documents().len());
        assert_eq!(a.documents()[0].terms, b.documents()[0].terms);
        assert_eq!(a.documents()[99].terms, b.documents()[99].terms);
    }

    #[test]
    fn term_frequencies_are_skewed() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let mut freq = vec![0u64; corpus.config().vocabulary];
        for d in corpus.documents() {
            for &t in &d.terms {
                freq[t as usize] += 1;
            }
        }
        let total: u64 = freq.iter().sum();
        let head: u64 = freq[..corpus.config().vocabulary / 10].iter().sum();
        assert!(
            head as f64 / total as f64 > 0.5,
            "head share = {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn queries_have_valid_terms_and_lengths() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let qg = QueryGenerator::web_search(&corpus);
        let mut rng = seeded_rng(1, 0);
        for _ in 0..100 {
            let q = qg.next_query(&mut rng);
            assert!((1..=4).contains(&q.len()));
            assert!(q.iter().all(|&t| (t as usize) < corpus.config().vocabulary));
        }
    }

    #[test]
    #[should_panic]
    fn zero_term_queries_rejected() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let _ = QueryGenerator::new(&corpus, 0, 3);
    }
}
