//! TPC-C transaction input generation.
//!
//! silo and shore are both driven by TPC-C (paper Table I: 1 warehouse for silo, 10 for
//! shore).  This module implements the input-generation side of the TPC-C specification:
//! the standard transaction mix, the non-uniform random (NURand) item and customer
//! selection, and customer last-name synthesis.  The transaction *logic* lives in
//! `tailbench-oltp`; both engines consume the inputs produced here.

use crate::rng::SuiteRng;
use rand::Rng;

/// Number of districts per warehouse (TPC-C constant).
pub const DISTRICTS_PER_WAREHOUSE: u32 = 10;
/// Number of customers per district (TPC-C constant).
pub const CUSTOMERS_PER_DISTRICT: u32 = 3_000;
/// Number of items in the catalog (TPC-C constant).
pub const ITEMS: u32 = 100_000;
/// Maximum order lines per new-order transaction.
pub const MAX_ORDER_LINES: u32 = 15;
/// Minimum order lines per new-order transaction.
pub const MIN_ORDER_LINES: u32 = 5;

/// TPC-C NURand constant `C` values fixed per run (the spec draws them once).
#[derive(Debug, Clone, Copy)]
pub struct NurandConstants {
    /// Constant for customer-id selection (A = 1023).
    pub c_for_c_id: u32,
    /// Constant for customer-last-name selection (A = 255).
    pub c_for_c_last: u32,
    /// Constant for item-id selection (A = 8191).
    pub c_for_ol_i_id: u32,
}

impl NurandConstants {
    /// Draws a fresh set of constants.
    pub fn draw(rng: &mut SuiteRng) -> Self {
        NurandConstants {
            c_for_c_id: rng.gen_range(0..=1023),
            c_for_c_last: rng.gen_range(0..=255),
            c_for_ol_i_id: rng.gen_range(0..=8191),
        }
    }
}

/// TPC-C non-uniform random function NURand(A, x, y).
#[must_use]
pub fn nurand(rng: &mut SuiteRng, a: u32, c: u32, x: u32, y: u32) -> u32 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// The TPC-C last-name syllables.
const NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Builds a TPC-C customer last name from a number in `0..=999`.
#[must_use]
pub fn customer_last_name(num: u32) -> String {
    let num = num % 1000;
    format!(
        "{}{}{}",
        NAME_SYLLABLES[(num / 100) as usize],
        NAME_SYLLABLES[((num / 10) % 10) as usize],
        NAME_SYLLABLES[(num % 10) as usize]
    )
}

/// How a customer is identified in Payment / Order-Status transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomerSelector {
    /// By primary key.
    ById(u32),
    /// By last name (the spec uses this 60% of the time).
    ByLastName(String),
}

/// One order line of a New-Order transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderLineInput {
    /// Item being ordered.
    pub item_id: u32,
    /// Supplying warehouse (1% remote in multi-warehouse configurations).
    pub supply_warehouse: u32,
    /// Quantity ordered (1..=10).
    pub quantity: u32,
}

/// Inputs of a New-Order transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewOrderInput {
    /// Home warehouse.
    pub warehouse: u32,
    /// District within the warehouse.
    pub district: u32,
    /// Ordering customer.
    pub customer: u32,
    /// Order lines.
    pub lines: Vec<OrderLineInput>,
    /// Whether this transaction must roll back (the spec forces 1% aborts by using an
    /// invalid item id on the last line).
    pub rollback: bool,
}

/// Inputs of a Payment transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentInput {
    /// Warehouse receiving the payment.
    pub warehouse: u32,
    /// District receiving the payment.
    pub district: u32,
    /// Warehouse of the paying customer.
    pub customer_warehouse: u32,
    /// District of the paying customer.
    pub customer_district: u32,
    /// Paying customer.
    pub customer: CustomerSelector,
    /// Payment amount in cents.
    pub amount: u32,
}

/// Inputs of an Order-Status transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderStatusInput {
    /// Warehouse of the customer.
    pub warehouse: u32,
    /// District of the customer.
    pub district: u32,
    /// Customer whose last order is queried.
    pub customer: CustomerSelector,
}

/// Inputs of a Delivery transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryInput {
    /// Warehouse whose oldest undelivered orders are delivered.
    pub warehouse: u32,
    /// Carrier identifier (1..=10).
    pub carrier: u32,
}

/// Inputs of a Stock-Level transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StockLevelInput {
    /// Warehouse to inspect.
    pub warehouse: u32,
    /// District whose recent orders are inspected.
    pub district: u32,
    /// Stock threshold (10..=20).
    pub threshold: u32,
}

/// A TPC-C transaction request with its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum TpccTransaction {
    /// ~45% of the mix.
    NewOrder(NewOrderInput),
    /// ~43% of the mix.
    Payment(PaymentInput),
    /// ~4% of the mix.
    OrderStatus(OrderStatusInput),
    /// ~4% of the mix.
    Delivery(DeliveryInput),
    /// ~4% of the mix.
    StockLevel(StockLevelInput),
}

impl TpccTransaction {
    /// Short name of the transaction type.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TpccTransaction::NewOrder(_) => "new_order",
            TpccTransaction::Payment(_) => "payment",
            TpccTransaction::OrderStatus(_) => "order_status",
            TpccTransaction::Delivery(_) => "delivery",
            TpccTransaction::StockLevel(_) => "stock_level",
        }
    }
}

/// Scale and mix configuration for a TPC-C workload.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (the TPC-C scale factor; silo uses 1, shore uses 10 in the paper).
    pub warehouses: u32,
    /// Number of items in the catalog; the full spec value is [`ITEMS`], tests scale down.
    pub items: u32,
    /// Customers per district; the full spec value is [`CUSTOMERS_PER_DISTRICT`].
    pub customers_per_district: u32,
    /// Fraction of order lines supplied by a remote warehouse (spec: 0.01).
    pub remote_line_fraction: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 1,
            items: ITEMS,
            customers_per_district: CUSTOMERS_PER_DISTRICT,
            remote_line_fraction: 0.01,
        }
    }
}

impl TpccConfig {
    /// A reduced-scale configuration suitable for unit tests.
    #[must_use]
    pub fn small() -> Self {
        TpccConfig {
            warehouses: 2,
            items: 1_000,
            customers_per_district: 60,
            remote_line_fraction: 0.01,
        }
    }

    /// The silo configuration from the paper (1 warehouse).
    #[must_use]
    pub fn silo() -> Self {
        TpccConfig {
            warehouses: 1,
            ..Self::default()
        }
    }

    /// The shore configuration from the paper (10 warehouses).
    #[must_use]
    pub fn shore() -> Self {
        TpccConfig {
            warehouses: 10,
            ..Self::default()
        }
    }
}

/// Generates TPC-C transactions according to the standard mix.
#[derive(Debug, Clone)]
pub struct TpccGenerator {
    config: TpccConfig,
    constants: NurandConstants,
}

impl TpccGenerator {
    /// Creates a generator, drawing the NURand constants from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero warehouses, items or customers.
    #[must_use]
    pub fn new(config: TpccConfig, rng: &mut SuiteRng) -> Self {
        assert!(config.warehouses > 0 && config.items > 0 && config.customers_per_district > 0);
        TpccGenerator {
            config,
            constants: NurandConstants::draw(rng),
        }
    }

    /// The workload configuration.
    #[must_use]
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    fn pick_warehouse(&self, rng: &mut SuiteRng) -> u32 {
        rng.gen_range(1..=self.config.warehouses)
    }

    fn pick_district(&self, rng: &mut SuiteRng) -> u32 {
        rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE)
    }

    fn pick_customer(&self, rng: &mut SuiteRng) -> u32 {
        let max = self.config.customers_per_district;
        if max >= 3000 {
            nurand(rng, 1023, self.constants.c_for_c_id, 1, max)
        } else {
            // Scaled-down configurations: keep the non-uniformity but clamp the range.
            nurand(rng, 1023, self.constants.c_for_c_id, 1, 3000) % max + 1
        }
    }

    fn pick_item(&self, rng: &mut SuiteRng) -> u32 {
        let max = self.config.items;
        if max >= ITEMS {
            nurand(rng, 8191, self.constants.c_for_ol_i_id, 1, max)
        } else {
            nurand(rng, 8191, self.constants.c_for_ol_i_id, 1, ITEMS) % max + 1
        }
    }

    fn pick_customer_selector(&self, rng: &mut SuiteRng) -> CustomerSelector {
        if rng.gen_bool(0.6) {
            let name_num = nurand(rng, 255, self.constants.c_for_c_last, 0, 999);
            CustomerSelector::ByLastName(customer_last_name(name_num))
        } else {
            CustomerSelector::ById(self.pick_customer(rng))
        }
    }

    /// Generates a New-Order input for the given home warehouse.
    pub fn new_order(&self, rng: &mut SuiteRng, warehouse: u32) -> NewOrderInput {
        let n_lines = rng.gen_range(MIN_ORDER_LINES..=MAX_ORDER_LINES);
        let rollback = rng.gen_bool(0.01);
        let lines = (0..n_lines)
            .map(|_| {
                let remote =
                    self.config.warehouses > 1 && rng.gen_bool(self.config.remote_line_fraction);
                let supply_warehouse = if remote {
                    let mut w = rng.gen_range(1..=self.config.warehouses);
                    if w == warehouse {
                        w = w % self.config.warehouses + 1;
                    }
                    w
                } else {
                    warehouse
                };
                OrderLineInput {
                    item_id: self.pick_item(rng),
                    supply_warehouse,
                    quantity: rng.gen_range(1..=10),
                }
            })
            .collect();
        NewOrderInput {
            warehouse,
            district: self.pick_district(rng),
            customer: self.pick_customer(rng),
            lines,
            rollback,
        }
    }

    /// Generates a Payment input for the given home warehouse.
    pub fn payment(&self, rng: &mut SuiteRng, warehouse: u32) -> PaymentInput {
        let district = self.pick_district(rng);
        // 85% local customer, 15% remote (when more than one warehouse exists).
        let (c_w, c_d) = if self.config.warehouses > 1 && rng.gen_bool(0.15) {
            let mut w = rng.gen_range(1..=self.config.warehouses);
            if w == warehouse {
                w = w % self.config.warehouses + 1;
            }
            (w, self.pick_district(rng))
        } else {
            (warehouse, district)
        };
        PaymentInput {
            warehouse,
            district,
            customer_warehouse: c_w,
            customer_district: c_d,
            customer: self.pick_customer_selector(rng),
            amount: rng.gen_range(100..=500_000),
        }
    }

    /// Draws the next transaction of the standard mix.
    pub fn next_transaction(&self, rng: &mut SuiteRng) -> TpccTransaction {
        let warehouse = self.pick_warehouse(rng);
        let roll: f64 = rng.gen();
        if roll < 0.45 {
            TpccTransaction::NewOrder(self.new_order(rng, warehouse))
        } else if roll < 0.88 {
            TpccTransaction::Payment(self.payment(rng, warehouse))
        } else if roll < 0.92 {
            TpccTransaction::OrderStatus(OrderStatusInput {
                warehouse,
                district: self.pick_district(rng),
                customer: self.pick_customer_selector(rng),
            })
        } else if roll < 0.96 {
            TpccTransaction::Delivery(DeliveryInput {
                warehouse,
                carrier: rng.gen_range(1..=10),
            })
        } else {
            TpccTransaction::StockLevel(StockLevelInput {
                warehouse,
                district: self.pick_district(rng),
                threshold: rng.gen_range(10..=20),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn last_names_follow_spec_syllables() {
        assert_eq!(customer_last_name(0), "BARBARBAR");
        assert_eq!(customer_last_name(999), "EINGEINGEING");
        assert_eq!(customer_last_name(371), "PRICALLYOUGHT");
        assert_eq!(customer_last_name(1371), "PRICALLYOUGHT");
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = seeded_rng(1, 0);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, 17, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn transaction_mix_matches_spec() {
        let mut rng = seeded_rng(2, 0);
        let gen = TpccGenerator::new(TpccConfig::small(), &mut rng);
        let mut counts = std::collections::HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            *counts
                .entry(gen.next_transaction(&mut rng).kind())
                .or_insert(0usize) += 1;
        }
        let frac = |k: &str| *counts.get(k).unwrap_or(&0) as f64 / n as f64;
        assert!((frac("new_order") - 0.45).abs() < 0.02);
        assert!((frac("payment") - 0.43).abs() < 0.02);
        assert!((frac("order_status") - 0.04).abs() < 0.01);
        assert!((frac("delivery") - 0.04).abs() < 0.01);
        assert!((frac("stock_level") - 0.04).abs() < 0.01);
    }

    #[test]
    fn new_order_inputs_are_well_formed() {
        let mut rng = seeded_rng(3, 0);
        let cfg = TpccConfig::small();
        let gen = TpccGenerator::new(cfg.clone(), &mut rng);
        let mut rollbacks = 0usize;
        for _ in 0..2_000 {
            let no = gen.new_order(&mut rng, 1);
            assert!((MIN_ORDER_LINES..=MAX_ORDER_LINES).contains(&(no.lines.len() as u32)));
            assert!((1..=DISTRICTS_PER_WAREHOUSE).contains(&no.district));
            assert!((1..=cfg.customers_per_district).contains(&no.customer));
            for l in &no.lines {
                assert!((1..=cfg.items).contains(&l.item_id));
                assert!((1..=cfg.warehouses).contains(&l.supply_warehouse));
                assert!((1..=10).contains(&l.quantity));
            }
            if no.rollback {
                rollbacks += 1;
            }
        }
        // ~1% rollbacks.
        assert!(rollbacks > 0 && rollbacks < 100, "rollbacks = {rollbacks}");
    }

    #[test]
    fn payment_remote_fraction_is_small() {
        let mut rng = seeded_rng(4, 0);
        let gen = TpccGenerator::new(TpccConfig::small(), &mut rng);
        let remote = (0..5_000)
            .filter(|_| {
                let p = gen.payment(&mut rng, 1);
                p.customer_warehouse != p.warehouse
            })
            .count();
        let frac = remote as f64 / 5_000.0;
        assert!((frac - 0.15).abs() < 0.03, "remote fraction {frac}");
    }

    #[test]
    fn customer_selection_uses_names_sixty_percent() {
        let mut rng = seeded_rng(5, 0);
        let gen = TpccGenerator::new(TpccConfig::small(), &mut rng);
        let by_name = (0..5_000)
            .filter(|_| {
                matches!(
                    gen.payment(&mut rng, 1).customer,
                    CustomerSelector::ByLastName(_)
                )
            })
            .count();
        let frac = by_name as f64 / 5_000.0;
        assert!((frac - 0.6).abs() < 0.05, "by-name fraction {frac}");
    }

    #[test]
    fn single_warehouse_never_generates_remote_lines() {
        let mut rng = seeded_rng(6, 0);
        let gen = TpccGenerator::new(TpccConfig::silo(), &mut rng);
        for _ in 0..500 {
            let no = gen.new_order(&mut rng, 1);
            assert!(no.lines.iter().all(|l| l.supply_warehouse == 1));
        }
    }
}
