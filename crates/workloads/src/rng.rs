//! Deterministic random-number plumbing.
//!
//! Every generator in the suite is seeded explicitly so that runs are reproducible, and
//! the harness re-randomizes seeds across repeated runs (paper §IV-C: "randomizing
//! requests as well as interarrival times in each run").  This module centralizes seed
//! derivation so that independent components (traffic shaper, request generator, each
//! worker) receive decorrelated streams from a single root seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pseudo-random generator used throughout the suite.
pub type SuiteRng = StdRng;

/// Derives a child seed from a root seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which provides good avalanche behaviour so that nearby
/// `(seed, stream)` pairs produce unrelated child seeds.
///
/// # Example
///
/// ```
/// let a = tailbench_workloads::rng::derive_seed(42, 0);
/// let b = tailbench_workloads::rng::derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, tailbench_workloads::rng::derive_seed(42, 0));
/// ```
#[must_use]
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut z = root.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a [`SuiteRng`] from a root seed and stream label.
#[must_use]
pub fn seeded_rng(root: u64, stream: u64) -> SuiteRng {
    StdRng::seed_from_u64(derive_seed(root, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(1, 7), derive_seed(1, 7));
        assert_ne!(derive_seed(1, 7), derive_seed(1, 8));
        assert_ne!(derive_seed(1, 7), derive_seed(2, 7));
    }

    #[test]
    fn seeded_rng_reproduces_sequence() {
        let mut a = seeded_rng(99, 3);
        let mut b = seeded_rng(99, 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_decorrelate() {
        let mut a = seeded_rng(99, 0);
        let mut b = seeded_rng(99, 1);
        let equal = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(equal, 0);
    }
}
