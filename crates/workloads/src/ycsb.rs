//! YCSB-style key-value workload generation.
//!
//! masstree is driven by a modified Yahoo Cloud Serving Benchmark with 50% GETs and 50%
//! PUTs ("mycsb-a", paper Table I).  This module generates that operation mix over a
//! configurable key space with Zipfian key popularity and fixed-size values, exactly as
//! the YCSB core workloads do.

use crate::rng::SuiteRng;
use crate::zipf::ScrambledZipfian;
use rand::Rng;

/// A single key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value of a key.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Insert or overwrite a key.
    Put {
        /// Key to write.
        key: u64,
        /// Value payload.
        value: Vec<u8>,
    },
    /// Range scan starting at `key` for `count` entries.
    Scan {
        /// First key of the range.
        key: u64,
        /// Maximum number of entries to return.
        count: usize,
    },
}

impl KvOp {
    /// The key this operation addresses.
    #[must_use]
    pub fn key(&self) -> u64 {
        match self {
            KvOp::Get { key } | KvOp::Put { key, .. } | KvOp::Scan { key, .. } => *key,
        }
    }
}

/// Operation mix of a YCSB-style workload, expressed as fractions summing to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of GET operations.
    pub get: f64,
    /// Fraction of PUT operations.
    pub put: f64,
    /// Fraction of SCAN operations.
    pub scan: f64,
}

impl OpMix {
    /// The mycsb-a mix used by the paper: 50% GETs, 50% PUTs.
    pub const MYCSB_A: OpMix = OpMix {
        get: 0.5,
        put: 0.5,
        scan: 0.0,
    };

    /// YCSB-B: 95% reads, 5% updates.
    pub const YCSB_B: OpMix = OpMix {
        get: 0.95,
        put: 0.05,
        scan: 0.0,
    };

    /// YCSB-E-like: 95% scans, 5% inserts.
    pub const YCSB_E: OpMix = OpMix {
        get: 0.0,
        put: 0.05,
        scan: 0.95,
    };

    /// Validates that fractions are non-negative and sum to ~1.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.get >= 0.0
            && self.put >= 0.0
            && self.scan >= 0.0
            && ((self.get + self.put + self.scan) - 1.0).abs() < 1e-6
    }
}

/// Configuration of the key-value workload.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of records pre-loaded into the store.
    pub records: u64,
    /// Size of each value in bytes.
    pub value_size: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Zipfian skew of key popularity.
    pub key_skew: f64,
    /// Maximum scan length.
    pub max_scan: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        // The paper's masstree table is 1.1 GB; we scale record count down while keeping
        // per-request work representative (tree depth changes only logarithmically).
        YcsbConfig {
            records: 1_000_000,
            value_size: 128,
            mix: OpMix::MYCSB_A,
            key_skew: 0.99,
            max_scan: 100,
        }
    }
}

impl YcsbConfig {
    /// A small configuration suitable for unit tests.
    #[must_use]
    pub fn small() -> Self {
        YcsbConfig {
            records: 10_000,
            value_size: 32,
            ..Self::default()
        }
    }
}

/// Generates YCSB-style operations.
#[derive(Debug, Clone)]
pub struct YcsbGenerator {
    config: YcsbConfig,
    key_dist: ScrambledZipfian,
}

impl YcsbGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the operation mix is invalid or `records == 0`.
    #[must_use]
    pub fn new(config: YcsbConfig) -> Self {
        assert!(config.mix.is_valid(), "operation mix must sum to 1");
        assert!(config.records > 0, "need at least one record");
        let key_dist = ScrambledZipfian::new(config.records, config.key_skew);
        YcsbGenerator { config, key_dist }
    }

    /// The workload configuration.
    #[must_use]
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// The keys (and deterministic values) to preload before measurement.
    pub fn load_keys(&self) -> impl Iterator<Item = (u64, Vec<u8>)> + '_ {
        (0..self.config.records).map(move |k| (k, self.value_for(k)))
    }

    /// Deterministic value payload for a key (used by loading and by PUTs).
    #[must_use]
    pub fn value_for(&self, key: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.config.value_size];
        for (i, b) in v.iter_mut().enumerate() {
            *b = ((key as usize).wrapping_mul(31).wrapping_add(i * 7) & 0xFF) as u8;
        }
        v
    }

    /// Draws the next operation.
    pub fn next_op(&self, rng: &mut SuiteRng) -> KvOp {
        let key = self.key_dist.sample(rng);
        let r: f64 = rng.gen();
        if r < self.config.mix.get {
            KvOp::Get { key }
        } else if r < self.config.mix.get + self.config.mix.put {
            KvOp::Put {
                key,
                value: self.value_for(key),
            }
        } else {
            KvOp::Scan {
                key,
                count: rng.gen_range(1..=self.config.max_scan),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn mix_validation() {
        assert!(OpMix::MYCSB_A.is_valid());
        assert!(OpMix::YCSB_B.is_valid());
        assert!(OpMix::YCSB_E.is_valid());
        assert!(!OpMix {
            get: 0.5,
            put: 0.6,
            scan: 0.0
        }
        .is_valid());
        assert!(!OpMix {
            get: -0.1,
            put: 1.1,
            scan: 0.0
        }
        .is_valid());
    }

    #[test]
    fn mycsb_a_mix_is_half_get_half_put() {
        let gen = YcsbGenerator::new(YcsbConfig::small());
        let mut rng = seeded_rng(1, 0);
        let mut gets = 0usize;
        let mut puts = 0usize;
        for _ in 0..20_000 {
            match gen.next_op(&mut rng) {
                KvOp::Get { .. } => gets += 1,
                KvOp::Put { .. } => puts += 1,
                KvOp::Scan { .. } => panic!("mycsb-a has no scans"),
            }
        }
        let get_frac = gets as f64 / (gets + puts) as f64;
        assert!((get_frac - 0.5).abs() < 0.02, "get fraction {get_frac}");
    }

    #[test]
    fn keys_stay_in_range_and_are_skewed() {
        let cfg = YcsbConfig::small();
        let records = cfg.records;
        let gen = YcsbGenerator::new(cfg);
        let mut rng = seeded_rng(2, 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let k = gen.next_op(&mut rng).key();
            assert!(k < records);
            *counts.entry(k).or_insert(0u64) += 1;
        }
        // Under a 0.99-skew Zipfian the hottest key gets far more than its uniform share
        // (50_000 / 10_000 = 5 accesses) and not every key is touched.
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest > 500, "hottest key count = {hottest}");
        assert!(counts.len() < records as usize);
    }

    #[test]
    fn load_keys_cover_the_space_exactly_once() {
        let gen = YcsbGenerator::new(YcsbConfig::small());
        let keys: Vec<u64> = gen.load_keys().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), gen.config().records as usize);
        assert_eq!(keys[0], 0);
        assert_eq!(*keys.last().unwrap(), gen.config().records - 1);
    }

    #[test]
    fn values_are_deterministic_and_sized() {
        let gen = YcsbGenerator::new(YcsbConfig::small());
        assert_eq!(gen.value_for(42), gen.value_for(42));
        assert_ne!(gen.value_for(42), gen.value_for(43));
        assert_eq!(gen.value_for(7).len(), gen.config().value_size);
    }

    #[test]
    fn scan_workload_produces_scans() {
        let cfg = YcsbConfig {
            mix: OpMix::YCSB_E,
            ..YcsbConfig::small()
        };
        let gen = YcsbGenerator::new(cfg);
        let mut rng = seeded_rng(3, 0);
        let scans = (0..1000)
            .filter(|_| matches!(gen.next_op(&mut rng), KvOp::Scan { .. }))
            .count();
        assert!(scans > 900);
    }

    #[test]
    #[should_panic(expected = "operation mix")]
    fn invalid_mix_panics() {
        let cfg = YcsbConfig {
            mix: OpMix {
                get: 0.9,
                put: 0.9,
                scan: 0.0,
            },
            ..YcsbConfig::small()
        };
        let _ = YcsbGenerator::new(cfg);
    }
}
