//! Request interarrival-time generators.
//!
//! The TailBench traffic shaper is open-loop: it emits requests at times drawn from a
//! Poisson process (exponentially distributed interarrival gaps) with a configurable rate,
//! which prior work showed models datacenter traffic well (paper §IV-A).  A deterministic
//! (uniformly spaced) generator is also provided for debugging and for ablations that
//! isolate queueing randomness.

use crate::rng::SuiteRng;
use rand::Rng;
use std::time::Duration;

/// A source of interarrival gaps between consecutive requests.
#[derive(Debug, Clone)]
pub enum InterarrivalProcess {
    /// Poisson arrivals: exponentially distributed gaps with the given mean.
    Exponential {
        /// Mean gap between requests, in nanoseconds.
        mean_ns: f64,
    },
    /// Uniformly spaced arrivals (every gap identical).
    Deterministic {
        /// Fixed gap between requests, in nanoseconds.
        gap_ns: u64,
    },
}

impl InterarrivalProcess {
    /// Creates a Poisson arrival process with the given request rate in queries/second.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not finite and positive.
    #[must_use]
    pub fn poisson(qps: f64) -> Self {
        assert!(
            qps.is_finite() && qps > 0.0,
            "qps must be positive, got {qps}"
        );
        InterarrivalProcess::Exponential { mean_ns: 1e9 / qps }
    }

    /// Creates a deterministic arrival process with the given request rate in
    /// queries/second.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not finite and positive.
    #[must_use]
    pub fn uniform(qps: f64) -> Self {
        assert!(
            qps.is_finite() && qps > 0.0,
            "qps must be positive, got {qps}"
        );
        InterarrivalProcess::Deterministic {
            gap_ns: (1e9 / qps).round().max(1.0) as u64,
        }
    }

    /// The configured mean request rate in queries per second.
    #[must_use]
    pub fn qps(&self) -> f64 {
        match self {
            InterarrivalProcess::Exponential { mean_ns } => 1e9 / mean_ns,
            InterarrivalProcess::Deterministic { gap_ns } => 1e9 / *gap_ns as f64,
        }
    }

    /// Draws the next interarrival gap in nanoseconds.
    pub fn next_gap_ns(&self, rng: &mut SuiteRng) -> u64 {
        match self {
            InterarrivalProcess::Exponential { mean_ns } => {
                // Inverse-CDF sampling; guard against u == 0 which would give infinity.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (-u.ln() * mean_ns).round() as u64
            }
            InterarrivalProcess::Deterministic { gap_ns } => *gap_ns,
        }
    }

    /// Draws the next interarrival gap as a [`Duration`].
    pub fn next_gap(&self, rng: &mut SuiteRng) -> Duration {
        Duration::from_nanos(self.next_gap_ns(rng))
    }

    /// Generates the absolute issue times (in nanoseconds from 0) for `n` requests.
    pub fn schedule(&self, rng: &mut SuiteRng, n: usize) -> Vec<u64> {
        let mut t = 0u64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            t = t.saturating_add(self.next_gap_ns(rng));
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn poisson_mean_matches_rate() {
        let p = InterarrivalProcess::poisson(10_000.0); // 100 us mean gap
        let mut rng = seeded_rng(7, 0);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| p.next_gap_ns(&mut rng) as f64).sum();
        let mean = total / n as f64;
        assert!((mean - 100_000.0).abs() / 100_000.0 < 0.02, "mean = {mean}");
    }

    #[test]
    fn poisson_coefficient_of_variation_near_one() {
        let p = InterarrivalProcess::poisson(1_000.0);
        let mut rng = seeded_rng(11, 0);
        let samples: Vec<f64> = (0..100_000)
            .map(|_| p.next_gap_ns(&mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() as f64 - 1.0);
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    fn deterministic_gaps_are_constant() {
        let p = InterarrivalProcess::uniform(2_000.0);
        let mut rng = seeded_rng(3, 0);
        let gaps: Vec<u64> = (0..10).map(|_| p.next_gap_ns(&mut rng)).collect();
        assert!(gaps.iter().all(|&g| g == 500_000));
    }

    #[test]
    fn qps_round_trips() {
        assert!((InterarrivalProcess::poisson(1234.0).qps() - 1234.0).abs() < 1e-6);
        assert!((InterarrivalProcess::uniform(1000.0).qps() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn schedule_is_monotonic() {
        let p = InterarrivalProcess::poisson(50_000.0);
        let mut rng = seeded_rng(5, 1);
        let sched = p.schedule(&mut rng, 1000);
        assert_eq!(sched.len(), 1000);
        assert!(sched.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn zero_qps_panics() {
        let _ = InterarrivalProcess::poisson(0.0);
    }
}
