//! Synthetic workload and input generation for TailBench-RS.
//!
//! Each TailBench application is driven by an input set with a specific statistical
//! structure (paper Table I): Zipfian query popularity for search, a 50/50 YCSB mix for
//! the key-value store, TPC-C for the OLTP engines, MNIST digits for image recognition,
//! and so on.  This crate provides from-scratch generators for all the *generic* pieces:
//!
//! * [`rng`] — deterministic seed derivation shared by every generator.
//! * [`interarrival`] — open-loop Poisson (and deterministic) request arrival processes.
//! * [`zipf`] — Zipfian and scrambled-Zipfian popularity distributions.
//! * [`text`] — a synthetic Wikipedia-like corpus and Zipfian query generator (xapian).
//! * [`ycsb`] — the mycsb-a key-value operation mix (masstree).
//! * [`tpcc`] — TPC-C transaction input generation (silo, shore).
//! * [`mnist`] — synthetic MNIST-like digit images (img-dnn).
//!
//! Domain-specific synthesis that must stay consistent with an application's internal
//! model (speech utterances, translation sentences, SPECjbb business requests) lives in
//! the respective application crate.
//!
//! # Example
//!
//! ```
//! use tailbench_workloads::interarrival::InterarrivalProcess;
//! use tailbench_workloads::rng::seeded_rng;
//!
//! let arrivals = InterarrivalProcess::poisson(1_000.0); // 1000 QPS
//! let mut rng = seeded_rng(42, 0);
//! let schedule = arrivals.schedule(&mut rng, 100);
//! assert_eq!(schedule.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interarrival;
pub mod mnist;
pub mod rng;
pub mod text;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use interarrival::InterarrivalProcess;
pub use rng::{seeded_rng, SuiteRng};
pub use zipf::{ScrambledZipfian, Zipfian};
