//! Zipfian distributions.
//!
//! Online-search query popularity and YCSB key popularity follow Zipf-like distributions
//! (paper §III, citing Baeza-Yates and the YCSB paper).  This module implements the
//! standard rejection-inversion-free Zipfian generator of Gray et al. (used by YCSB) plus
//! a *scrambled* variant that decorrelates popularity from key order.

use crate::rng::SuiteRng;
use rand::Rng;

/// Generator of Zipf-distributed ranks in `0..n`.
///
/// Rank 0 is the most popular item.  The skew parameter `theta` defaults to the YCSB
/// value 0.99; `theta = 0` degenerates to the uniform distribution.
///
/// # Example
///
/// ```
/// use tailbench_workloads::zipf::Zipfian;
/// use tailbench_workloads::rng::seeded_rng;
///
/// let z = Zipfian::new(1000, 0.99);
/// let mut rng = seeded_rng(1, 0);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a Zipfian generator over `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`… the Gray et al. construction
    /// requires `theta != 1`; values ≥ 1 are rejected.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over an empty domain");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// Creates the YCSB default (theta = 0.99).
    #[must_use]
    pub fn ycsb_default(n: u64) -> Self {
        Self::new(n, 0.99)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; item counts in this suite are at most a few million and the
        // constructor runs once per workload.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items in the domain.
    #[must_use]
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a rank in `0..n`, rank 0 being the most popular.
    pub fn sample(&self, rng: &mut SuiteRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u) - self.eta + 1.0).powf(self.alpha);
        let rank = (self.n as f64 * v) as u64;
        rank.min(self.n - 1)
    }

    /// The probability mass of rank `k` (0-based) under this distribution.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Unused field accessor kept for diagnostics of the Gray construction.
    #[must_use]
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

/// A Zipfian generator whose ranks are scrambled across the item space using an FNV-style
/// hash, as YCSB does, so that popular items are not clustered at low indices.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled Zipfian generator over `n` items with skew `theta`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Number of items in the domain.
    #[must_use]
    pub fn domain(&self) -> u64 {
        self.inner.domain()
    }

    /// Samples an item index in `0..n`.
    pub fn sample(&self, rng: &mut SuiteRng) -> u64 {
        let rank = self.inner.sample(rng);
        fnv_hash64(rank) % self.inner.domain()
    }
}

/// 64-bit FNV-1a hash of an integer, used to scramble Zipfian ranks.
#[must_use]
pub fn fnv_hash64(value: u64) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET;
    for i in 0..8 {
        let byte = (value >> (i * 8)) & 0xFF;
        hash ^= byte;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = seeded_rng(1, 0);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipfian::new(1_000, 0.99);
        let mut rng = seeded_rng(2, 0);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max_idx = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_idx, 0);
        // Head heaviness: the top 10% of ranks should hold well over half the mass.
        let head: u64 = counts[..100].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.55,
            "head share = {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipfian::new(10, 0.0);
        let mut rng = seeded_rng(3, 0);
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 100_000.0;
            assert!((p - 0.1).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipfian::new(500, 0.9);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(500), 0.0);
        assert!(z.pmf(0) > z.pmf(1));
    }

    #[test]
    fn scrambled_spreads_popularity() {
        let z = ScrambledZipfian::new(1_000, 0.99);
        let mut rng = seeded_rng(4, 0);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // The most popular item should NOT be item 0 with overwhelming likelihood
        // (scrambling moved it), and mass should still be skewed.
        let (max_idx, &max_cnt) = counts.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap();
        assert!(max_cnt > 5_000, "max count = {max_cnt}");
        assert_eq!(max_idx, (fnv_hash64(0) % 1000) as usize);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_panics() {
        let _ = Zipfian::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn theta_one_panics() {
        let _ = Zipfian::new(10, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::seeded_rng;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn samples_always_in_range(n in 1u64..5_000, theta in 0.0f64..0.999, seed in 0u64..1000) {
            let z = Zipfian::new(n, theta);
            let mut rng = seeded_rng(seed, 0);
            for _ in 0..64 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn pmf_is_monotonically_decreasing(n in 2u64..2_000, theta in 0.1f64..0.999) {
            let z = Zipfian::new(n, theta);
            for k in 0..(n - 1).min(64) {
                prop_assert!(z.pmf(k) >= z.pmf(k + 1));
            }
        }
    }
}
