//! Synthetic MNIST-like handwritten digits.
//!
//! img-dnn is driven by the MNIST database (paper Table I).  We cannot ship MNIST, so this
//! module synthesizes 28×28 grayscale digit images from per-digit stroke templates with
//! random jitter, translation and noise.  The resulting classification task has the same
//! input dimensionality and a comparable difficulty profile, which is all the benchmark
//! needs: img-dnn's service time is dominated by the fixed-topology forward pass, not by
//! which pixels are lit.

use crate::rng::SuiteRng;
use rand::Rng;

/// Image side length (MNIST format).
pub const IMAGE_SIDE: usize = 28;
/// Number of pixels per image.
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// A synthetic digit image with its ground-truth label.
#[derive(Debug, Clone)]
pub struct DigitImage {
    /// Pixel intensities in `[0, 1]`, row-major, 28×28.
    pub pixels: Vec<f32>,
    /// Ground-truth digit, `0..=9`.
    pub label: u8,
}

/// Per-digit stroke templates: each digit is a polyline list in the unit square.
fn strokes(digit: u8) -> Vec<[(f32, f32); 2]> {
    // Hand-crafted seven-segment-style skeletons; enough structure for a classifier to
    // separate classes after training on the same generator.
    let seg = |a: (f32, f32), b: (f32, f32)| [a, b];
    match digit {
        0 => vec![
            seg((0.3, 0.2), (0.7, 0.2)),
            seg((0.7, 0.2), (0.7, 0.8)),
            seg((0.7, 0.8), (0.3, 0.8)),
            seg((0.3, 0.8), (0.3, 0.2)),
        ],
        1 => vec![seg((0.5, 0.2), (0.5, 0.8)), seg((0.4, 0.3), (0.5, 0.2))],
        2 => vec![
            seg((0.3, 0.3), (0.7, 0.2)),
            seg((0.7, 0.2), (0.7, 0.5)),
            seg((0.7, 0.5), (0.3, 0.8)),
            seg((0.3, 0.8), (0.7, 0.8)),
        ],
        3 => vec![
            seg((0.3, 0.2), (0.7, 0.2)),
            seg((0.7, 0.2), (0.7, 0.8)),
            seg((0.3, 0.5), (0.7, 0.5)),
            seg((0.3, 0.8), (0.7, 0.8)),
        ],
        4 => vec![
            seg((0.3, 0.2), (0.3, 0.5)),
            seg((0.3, 0.5), (0.7, 0.5)),
            seg((0.7, 0.2), (0.7, 0.8)),
        ],
        5 => vec![
            seg((0.7, 0.2), (0.3, 0.2)),
            seg((0.3, 0.2), (0.3, 0.5)),
            seg((0.3, 0.5), (0.7, 0.5)),
            seg((0.7, 0.5), (0.7, 0.8)),
            seg((0.7, 0.8), (0.3, 0.8)),
        ],
        6 => vec![
            seg((0.7, 0.2), (0.3, 0.3)),
            seg((0.3, 0.3), (0.3, 0.8)),
            seg((0.3, 0.8), (0.7, 0.8)),
            seg((0.7, 0.8), (0.7, 0.5)),
            seg((0.7, 0.5), (0.3, 0.5)),
        ],
        7 => vec![seg((0.3, 0.2), (0.7, 0.2)), seg((0.7, 0.2), (0.4, 0.8))],
        8 => vec![
            seg((0.3, 0.2), (0.7, 0.2)),
            seg((0.7, 0.2), (0.7, 0.8)),
            seg((0.7, 0.8), (0.3, 0.8)),
            seg((0.3, 0.8), (0.3, 0.2)),
            seg((0.3, 0.5), (0.7, 0.5)),
        ],
        _ => vec![
            seg((0.3, 0.2), (0.7, 0.2)),
            seg((0.7, 0.2), (0.7, 0.8)),
            seg((0.3, 0.2), (0.3, 0.5)),
            seg((0.3, 0.5), (0.7, 0.5)),
        ],
    }
}

/// Generator of synthetic digit images.
#[derive(Debug, Clone)]
pub struct DigitGenerator {
    noise: f32,
    jitter: f32,
}

impl Default for DigitGenerator {
    fn default() -> Self {
        DigitGenerator {
            noise: 0.08,
            jitter: 0.06,
        }
    }
}

impl DigitGenerator {
    /// Creates a generator with the given pixel-noise amplitude and stroke jitter (both
    /// as fractions of the image size).
    #[must_use]
    pub fn new(noise: f32, jitter: f32) -> Self {
        DigitGenerator { noise, jitter }
    }

    /// Generates one image of the requested digit.
    ///
    /// # Panics
    ///
    /// Panics if `digit > 9`.
    pub fn generate_digit(&self, rng: &mut SuiteRng, digit: u8) -> DigitImage {
        assert!(digit < 10, "digit must be 0..=9");
        let mut pixels = vec![0.0f32; IMAGE_PIXELS];
        let dx: f32 = rng.gen_range(-self.jitter..=self.jitter);
        let dy: f32 = rng.gen_range(-self.jitter..=self.jitter);
        let scale: f32 = rng.gen_range(0.85..=1.1);
        for [a, b] in strokes(digit) {
            let a = (
                0.5 + (a.0 - 0.5) * scale + dx,
                0.5 + (a.1 - 0.5) * scale + dy,
            );
            let b = (
                0.5 + (b.0 - 0.5) * scale + dx,
                0.5 + (b.1 - 0.5) * scale + dy,
            );
            rasterize_segment(&mut pixels, a, b);
        }
        if self.noise > 0.0 {
            for p in &mut pixels {
                let n: f32 = rng.gen_range(0.0..self.noise);
                *p = (*p + n).clamp(0.0, 1.0);
            }
        }
        DigitImage {
            pixels,
            label: digit,
        }
    }

    /// Generates one image of a uniformly random digit.
    pub fn generate(&self, rng: &mut SuiteRng) -> DigitImage {
        let digit = rng.gen_range(0..NUM_CLASSES as u8);
        self.generate_digit(rng, digit)
    }

    /// Generates a labelled dataset of `n` images.
    pub fn dataset(&self, rng: &mut SuiteRng, n: usize) -> Vec<DigitImage> {
        (0..n).map(|_| self.generate(rng)).collect()
    }
}

/// Draws an anti-aliased thick line segment into the pixel buffer.
fn rasterize_segment(pixels: &mut [f32], a: (f32, f32), b: (f32, f32)) {
    let steps = 48;
    let thickness = 1.4f32;
    for s in 0..=steps {
        let t = s as f32 / steps as f32;
        let x = (a.0 + (b.0 - a.0) * t) * IMAGE_SIDE as f32;
        let y = (a.1 + (b.1 - a.1) * t) * IMAGE_SIDE as f32;
        let x0 = (x - thickness).floor().max(0.0) as usize;
        let x1 = (x + thickness).ceil().min(IMAGE_SIDE as f32 - 1.0) as usize;
        let y0 = (y - thickness).floor().max(0.0) as usize;
        let y1 = (y + thickness).ceil().min(IMAGE_SIDE as f32 - 1.0) as usize;
        for py in y0..=y1 {
            for px in x0..=x1 {
                let d2 = (px as f32 + 0.5 - x).powi(2) + (py as f32 + 0.5 - y).powi(2);
                let intensity = (1.0 - d2 / (thickness * thickness)).max(0.0);
                let idx = py * IMAGE_SIDE + px;
                pixels[idx] = pixels[idx].max(intensity);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn images_have_correct_shape_and_range() {
        let gen = DigitGenerator::default();
        let mut rng = seeded_rng(1, 0);
        for d in 0..10u8 {
            let img = gen.generate_digit(&mut rng, d);
            assert_eq!(img.pixels.len(), IMAGE_PIXELS);
            assert_eq!(img.label, d);
            assert!(img.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // The digit must actually light up a meaningful number of pixels.
            let lit = img.pixels.iter().filter(|&&p| p > 0.5).count();
            assert!(lit > 20, "digit {d} has only {lit} lit pixels");
        }
    }

    #[test]
    fn different_digits_have_different_shapes() {
        let gen = DigitGenerator::new(0.0, 0.0);
        let mut rng = seeded_rng(2, 0);
        let zero = gen.generate_digit(&mut rng, 0);
        let one = gen.generate_digit(&mut rng, 1);
        let diff: f32 = zero
            .pixels
            .iter()
            .zip(one.pixels.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 20.0,
            "digit 0 and 1 are nearly identical (diff = {diff})"
        );
    }

    #[test]
    fn dataset_covers_all_classes() {
        let gen = DigitGenerator::default();
        let mut rng = seeded_rng(3, 0);
        let data = gen.dataset(&mut rng, 500);
        assert_eq!(data.len(), 500);
        let mut seen = [false; 10];
        for img in &data {
            seen[img.label as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "digit must be")]
    fn invalid_digit_panics() {
        let gen = DigitGenerator::default();
        let mut rng = seeded_rng(4, 0);
        let _ = gen.generate_digit(&mut rng, 10);
    }
}
